// Package obs is the job-scoped lifecycle observability layer of the
// service tier: one Recorder per submitted job collects the spans of the
// job's journey through the stack — HTTP receive, content-digest/memo
// outcome, scheduler queue wait, grant allocation, engine phases — and
// exports them, together with the engine's per-worker timelines from
// internal/trace, as a single Chrome trace-event JSON document. One
// Perfetto load then shows the service-tier spans above the worker lanes
// of the same run, which is what makes queue-wait-dominated and
// compute-dominated jobs distinguishable at a glance (EXPERIMENTS.md has
// the reading recipe).
//
// Every method is safe on a nil *Recorder and allocates nothing there, so
// call sites never nil-check: with observability disabled the hot path
// pays one predictable branch per call. A live Recorder takes a mutex per
// recorded span — the service tier records a handful of spans per job, so
// contention is irrelevant; the engine's high-frequency worker spans stay
// in internal/trace's unsynchronized shards and are only stitched in at
// export time.
package obs

import (
	"encoding/json"
	"errors"
	"io"
	"sort"
	"sync"
	"time"

	"ramr/internal/trace"
)

// Span is one completed interval on the job's lifecycle timeline.
type Span struct {
	// Name labels the span ("build", "queue-wait", "execute", ...).
	Name string
	// Start and End are absolute times (the recorder keeps absolute
	// times so spans stitched from different clocks — scheduler
	// timestamps, engine collector offsets — line up on one axis).
	Start, End time.Time
	// Args carries optional details (the granted CPU set, the memo
	// outcome); shared with the recorder, do not mutate.
	Args map[string]any
}

// Instant is a point event on the lifecycle timeline (memo hit,
// coalesce, tuner decision, cancellation).
type Instant struct {
	Name string
	At   time.Time
	Args map[string]any
}

// Recorder collects one job's lifecycle trace. The zero value is not
// usable; construct with New. All methods are safe for concurrent use
// and no-ops on a nil receiver.
type Recorder struct {
	mu       sync.Mutex
	name     string
	epoch    time.Time
	finished time.Time
	status   string
	jobID    int
	workload string
	spans    []Span
	instants []Instant
	engines  []*trace.Collector
}

// New returns a Recorder whose epoch (the root span's start) is now.
// name labels the root span; the service uses "job".
func New(name string) *Recorder {
	return &Recorder{name: name, epoch: time.Now()}
}

// noopEnd is the shared end function returned by Span on a nil receiver,
// so the disabled path allocates no closure.
var noopEnd = func() {}

// Span starts a span now and returns the function that ends it:
//
//	defer rec.Span("build", nil)()
func (r *Recorder) Span(name string, args map[string]any) func() {
	if r == nil {
		return noopEnd
	}
	start := time.Now()
	return func() { r.SpanAt(name, start, time.Now(), args) }
}

// SpanAt records an already-measured span with absolute bounds. Spans
// whose End precedes Start are clamped to zero length. No-op on nil.
func (r *Recorder) SpanAt(name string, start, end time.Time, args map[string]any) {
	if r == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Name: name, Start: start, End: end, Args: args})
	r.mu.Unlock()
}

// Instant records a point event now. No-op on nil.
func (r *Recorder) Instant(name string, args map[string]any) {
	if r == nil {
		return
	}
	r.InstantAt(name, time.Now(), args)
}

// InstantAt records a point event at an explicit time. No-op on nil.
func (r *Recorder) InstantAt(name string, at time.Time, args map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.instants = append(r.instants, Instant{Name: name, At: at, Args: args})
	r.mu.Unlock()
}

// SetJob attaches the job's identity (known only after admission) to the
// root span. No-op on nil.
func (r *Recorder) SetJob(id int, workload string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.jobID = id
	r.workload = workload
	r.mu.Unlock()
}

// AttachEngine registers an engine trace collector whose worker lanes
// are stitched under the job's root span at export time. The collector's
// own epoch (trace.Collector.Epoch) re-bases its relative offsets onto
// the recorder's absolute axis. No-op on nil.
func (r *Recorder) AttachEngine(c *trace.Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.engines = append(r.engines, c)
	r.mu.Unlock()
}

// Finish closes the root span with a terminal status ("done",
// "canceled", "cached", "coalesced", ...). The first call wins;
// subsequent calls are no-ops, as is a call on nil.
func (r *Recorder) Finish(status string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.finished.IsZero() {
		r.finished = time.Now()
		r.status = status
	}
	r.mu.Unlock()
}

// Finished reports whether the root span has been closed.
func (r *Recorder) Finished() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.finished.IsZero()
}

// Epoch returns the recorder's root-span start time (zero on nil).
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Status returns the terminal status set by Finish ("" while open).
func (r *Recorder) Status() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Spans returns the recorded spans sorted by start time (ties broken by
// name, then recording order kept stable), a copy safe to retain.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Instants returns the recorded point events sorted by time (copy).
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Instant(nil), r.instants...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON array — the
// same shape internal/trace emits, so either document loads in Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	S    string         `json:"s,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// lifecycleLane is the thread id of the service-tier span lane; engine
// worker lanes are assigned ids from engineLaneBase up, so the lifecycle
// row always sorts above the worker rows in a trace viewer.
const (
	lifecycleLane  = 1
	engineLaneBase = 2
)

// WriteChromeTrace exports the lifecycle trace — root span, service
// spans, instants and every attached engine collector's worker lanes —
// as one Chrome trace-event JSON array. Timestamps are microseconds from
// the recorder's epoch; thread-name metadata events come first, then all
// duration/instant events in non-decreasing ts order, so consumers that
// stream the array see a monotonic timeline.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		return errors.New("obs: nil recorder")
	}
	r.mu.Lock()
	name, epoch, finished, status := r.name, r.epoch, r.finished, r.status
	jobID, workload := r.jobID, r.workload
	spans := append([]Span(nil), r.spans...)
	instants := append([]Instant(nil), r.instants...)
	engines := append([]*trace.Collector(nil), r.engines...)
	r.mu.Unlock()

	us := func(t time.Time) float64 {
		d := t.Sub(epoch)
		if d < 0 {
			d = 0
		}
		return float64(d.Microseconds())
	}

	var out []chromeEvent
	rootEnd := finished
	add := func(e chromeEvent, end time.Time) {
		out = append(out, e)
		if rootEnd.IsZero() || end.After(rootEnd) {
			// An open root (job still live) extends to the latest
			// recorded event so the trace stays well-formed mid-run.
			if finished.IsZero() {
				rootEnd = end
			}
		}
	}
	for _, s := range spans {
		add(chromeEvent{
			Name: s.Name, Ph: "X", Ts: us(s.Start), Dur: float64(s.End.Sub(s.Start).Microseconds()),
			PID: 1, TID: lifecycleLane, Args: s.Args,
		}, s.End)
	}
	for _, i := range instants {
		add(chromeEvent{
			Name: i.Name, Ph: "i", S: "t", Ts: us(i.At),
			PID: 1, TID: lifecycleLane, Args: i.Args,
		}, i.At)
	}

	// Stitch the engine lanes: each collector's relative offsets are
	// re-based through its epoch onto the recorder's absolute axis.
	lane := map[string]int{}
	var laneOrder []string
	for _, col := range engines {
		base := col.Epoch()
		for _, e := range col.Events() {
			if _, ok := lane[e.Worker]; !ok {
				lane[e.Worker] = engineLaneBase + len(lane)
				laneOrder = append(laneOrder, e.Worker)
			}
			start := base.Add(e.Start)
			add(chromeEvent{
				Name: e.Name, Ph: "X", Ts: us(start), Dur: float64(e.Dur.Microseconds()),
				PID: 1, TID: lane[e.Worker], Args: e.Args,
			}, start.Add(e.Dur))
		}
	}

	// Root span over everything recorded so far.
	rootArgs := map[string]any{"job_id": jobID, "workload": workload}
	if status != "" {
		rootArgs["status"] = status
	}
	if rootEnd.IsZero() {
		rootEnd = epoch
	}
	out = append(out, chromeEvent{
		Name: name, Ph: "X", Ts: 0, Dur: float64(rootEnd.Sub(epoch).Microseconds()),
		PID: 1, TID: lifecycleLane, Args: rootArgs,
	})

	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })

	meta := make([]chromeEvent, 0, 1+len(laneOrder))
	meta = append(meta, chromeEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: lifecycleLane,
		Args: map[string]any{"name": "lifecycle"},
	})
	for _, worker := range laneOrder {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: lane[worker],
			Args: map[string]any{"name": worker},
		})
	}
	return json.NewEncoder(w).Encode(append(meta, out...))
}
