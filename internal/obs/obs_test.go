package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"ramr/internal/trace"
)

// TestNilRecorderZeroAlloc pins the disabled-path contract: every method
// of a nil *Recorder (and nil *Ring) must allocate nothing, so engine
// and service hot paths can call unconditionally.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	var ring *Ring
	var sink func()
	allocs := testing.AllocsPerRun(1000, func() {
		sink = r.Span("x", nil)
		sink()
		r.SpanAt("x", time.Time{}, time.Time{}, nil)
		r.Instant("x", nil)
		r.InstantAt("x", time.Time{}, nil)
		r.SetJob(1, "WC")
		r.AttachEngine(nil)
		r.Finish("done")
		_ = r.Finished()
		_ = r.Status()
		ring.Append("x", 1, nil)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %v times per run, want 0", allocs)
	}
	_ = sink
}

func TestRecorderSpansSorted(t *testing.T) {
	r := New("job")
	base := r.Epoch()
	r.SpanAt("late", base.Add(30*time.Millisecond), base.Add(40*time.Millisecond), nil)
	r.SpanAt("early", base, base.Add(10*time.Millisecond), map[string]any{"k": 1})
	r.SpanAt("mid", base.Add(10*time.Millisecond), base.Add(30*time.Millisecond), nil)
	got := r.Spans()
	want := []string{"early", "mid", "late"}
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("span %d = %q, want %q", i, got[i].Name, name)
		}
	}
	if got[0].Args["k"] != 1 {
		t.Fatalf("span args lost: %v", got[0].Args)
	}
}

func TestRecorderFinishFirstWins(t *testing.T) {
	r := New("job")
	r.Finish("done")
	r.Finish("canceled")
	if got := r.Status(); got != "done" {
		t.Fatalf("status = %q, want done (first Finish wins)", got)
	}
	if !r.Finished() {
		t.Fatal("Finished() = false after Finish")
	}
}

// decodeTrace parses a Chrome-trace export and returns the event maps.
func decodeTrace(t *testing.T, buf []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal(buf, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	return events
}

// TestWriteChromeTrace checks the export contract the CI smoke also
// validates: metadata first, then a monotonic timeline containing the
// root span, lifecycle spans and stitched engine lanes.
func TestWriteChromeTrace(t *testing.T) {
	r := New("job")
	r.SetJob(7, "WC")
	end := r.Span("build", nil)
	time.Sleep(time.Millisecond)
	end()

	col := trace.New()
	sh := col.Shard("mapper-0")
	done := sh.Span("task", map[string]any{"task": 0})
	time.Sleep(time.Millisecond)
	done()
	r.AttachEngine(col)
	r.Instant("memo-miss", nil)
	r.Finish("done")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())

	lanes := map[string]bool{}
	var names []string
	lastTs := -1.0
	metaDone := false
	for _, e := range events {
		ph := e["ph"].(string)
		if ph == "M" {
			if metaDone {
				t.Fatal("metadata event after timeline events")
			}
			lanes[e["args"].(map[string]any)["name"].(string)] = true
			continue
		}
		metaDone = true
		ts := e["ts"].(float64)
		if ts < lastTs {
			t.Fatalf("timeline not monotonic: ts %v after %v", ts, lastTs)
		}
		lastTs = ts
		names = append(names, e["name"].(string))
	}
	for _, lane := range []string{"lifecycle", "mapper-0"} {
		if !lanes[lane] {
			t.Fatalf("missing %s thread_name lane; lanes %v", lane, lanes)
		}
	}
	want := map[string]bool{"job": false, "build": false, "task": false, "memo-miss": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("event %q missing from export; got %v", n, names)
		}
	}
	// Root span carries the job identity and terminal status.
	for _, e := range events {
		if e["name"] == "job" && e["ph"] == "X" {
			args := e["args"].(map[string]any)
			if args["job_id"].(float64) != 7 || args["workload"] != "WC" || args["status"] != "done" {
				t.Fatalf("root span args = %v", args)
			}
		}
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := New("job")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Span("s", nil)()
				r.Instant("i", nil)
			}
		}()
	}
	wg.Wait()
	if got := len(r.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
}

func TestRingWrapsAndCounts(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Append("k", i, nil)
	}
	events, total := ring.Snapshot()
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
		if e.Job != 6+i {
			t.Fatalf("event %d job = %d, want %d", i, e.Job, 6+i)
		}
	}
}

func TestRingPartialAndDisabled(t *testing.T) {
	ring := NewRing(8)
	ring.Append("a", 1, map[string]any{"x": 1})
	ring.Append("b", 2, nil)
	events, total := ring.Snapshot()
	if total != 2 || len(events) != 2 || events[0].Kind != "a" || events[1].Kind != "b" {
		t.Fatalf("partial snapshot wrong: total=%d events=%v", total, events)
	}
	if ring.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", ring.Cap())
	}
	disabled := NewRing(0)
	if disabled != nil {
		t.Fatal("NewRing(0) should return nil (disabled)")
	}
	disabled.Append("x", 1, nil)
	if ev, n := disabled.Snapshot(); ev != nil || n != 0 {
		t.Fatalf("disabled ring snapshot = %v, %d", ev, n)
	}
}
