package obs

import (
	"sync"
	"time"
)

// Event is one entry of the service-wide bounded event log: a scheduler
// transition, memo outcome or lifecycle edge, timestamped and tagged
// with the job it concerns.
type Event struct {
	// Seq is the monotonically increasing sequence number of the event
	// across the ring's lifetime; gaps at the front of a snapshot mean
	// older events were overwritten.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Job  int       `json:"job,omitempty"`
	Kind string    `json:"kind"`
	Args map[string]any `json:"args,omitempty"`
}

// Ring is a fixed-capacity circular event log. Appends never block and
// overwrite the oldest entry once full, so the memory footprint of
// /debug/events is bounded no matter how long the service runs. All
// methods are safe for concurrent use and no-ops on a nil *Ring.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	// next is the total number of events ever appended; next % cap is
	// the slot the next event lands in.
	next uint64
}

// NewRing returns a ring holding the last capacity events; capacity <= 0
// returns nil (a valid, disabled ring).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		return nil
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records an event stamped now. No-op on nil.
func (r *Ring) Append(kind string, job int, args map[string]any) {
	if r == nil {
		return
	}
	e := Event{Time: time.Now(), Job: job, Kind: kind, Args: args}
	r.mu.Lock()
	e.Seq = r.next
	r.next++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[int(e.Seq)%cap(r.buf)] = e
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events oldest-first, plus the total
// number of events ever appended (total - len(events) were overwritten).
func (r *Ring) Snapshot() (events []Event, total uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		return append([]Event(nil), r.buf...), r.next
	}
	// Full ring: the oldest entry sits at the next write slot.
	head := int(r.next) % cap(r.buf)
	events = make([]Event, 0, len(r.buf))
	events = append(events, r.buf[head:]...)
	events = append(events, r.buf[:head]...)
	return events, r.next
}

// Cap returns the ring's capacity (0 on nil).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}
