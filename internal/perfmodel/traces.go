package perfmodel

import (
	"fmt"

	"ramr/internal/container"
	"ramr/internal/stats"
)

// AppTrace bundles one application's modeled map/combine stream for one
// container configuration.
type AppTrace struct {
	// App is the short name (WC, HG, LR, KM, PCA, MM).
	App string
	// Kind is the intermediate container configuration.
	Kind container.Kind
	// InputBytes is the modeled input volume (the IPB denominator).
	InputBytes int
	// Elements is the number of intermediate pairs the map phase emits.
	Elements int
	// ElemBytes is the size of one queued pair (key + value), used by
	// the runtime simulator to size queue transfers.
	ElemBytes int
	// DistinctKeys is the final key cardinality of the modeled sample.
	DistinctKeys int
	// Gen generates the interleaved stream: map-phase operations go to
	// the first emitter, combine-phase (container update) operations to
	// the second, in program order.
	Gen PhasedTrace
}

// Address-space layout for the traces: disjoint regions so cache behavior
// per structure is realistic.
const (
	inputBase     = uint64(0x1000_0000)
	centroidBase  = uint64(0x1800_0000)
	containerBase = uint64(0x2000_0000)
	matrixBBase   = uint64(0x3000_0000)
	heapBase      = uint64(0x4000_0000)
	pointHeapBase = uint64(0x5000_0000)
)

// fixedHashMinSlots models Phoenix++'s fixed-size hash container, which
// pre-allocates a generically sized table rather than fitting the key
// range — that oversized, scatter-accessed table is precisely what makes
// the Figs. 8b/9b configuration memory-intensive even for apps with tiny
// key ranges (LR has 5 keys and still stalls in Fig. 10b).
const fixedHashMinSlots = 1 << 18

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// updateOps emits the container-update operations for one key arrival.
// Apps whose map emits keys in monotone order (PCA's row-pair sweep) pass
// seqEntries: a regular hash table then allocates its entry nodes in
// emission order, so the entry stream is sequential and prefetch-friendly
// instead of scattered — the locality that keeps PCA's combine cheap under
// every container (§IV-E).
func updateOps(emit func(Op), kind container.Kind, key uint64, keyRange, ordinal, elements int) {
	updateOpsLoc(emit, kind, key, keyRange, ordinal, elements, false)
}

func updateOpsLoc(emit func(Op), kind container.Kind, key uint64, keyRange, ordinal, elements int, seqEntries bool) {
	switch kind {
	case container.KindFixedArray:
		// Direct index: one load + one store at base+key*8, plus the
		// add itself.
		addr := containerBase + key*8
		emit(Op{Kind: OpLoad, Addr: addr})
		emit(Op{Kind: OpCompute, N: 2})
		emit(Op{Kind: OpStore, Addr: addr})
	case container.KindFixedHash:
		// Hash computation, then probe(s) scattered over the
		// pre-allocated table (16 B slots), then the update store.
		emit(Op{Kind: OpCompute, N: 12})
		slots := uint64(nextPow2(maxInt(keyRange+keyRange/7, fixedHashMinSlots)))
		slot := mix64(key) % slots
		addr := containerBase + slot*16
		emit(Op{Kind: OpLoad, Addr: addr, Dep: true})
		// Second probe for ~30% of accesses (collision chain).
		if mix64(key^0xabcd)%10 < 3 {
			emit(Op{Kind: OpLoad, Addr: addr + 16, Dep: true})
		}
		emit(Op{Kind: OpCompute, N: 3})
		emit(Op{Kind: OpStore, Addr: addr})
	case container.KindHash:
		// Regular hash table: hash, bucket-array load, dependent
		// entry load, update store; new keys additionally pay the
		// allocator. Entry nodes sit in allocation order: scattered
		// for arbitrary key arrival, sequential when the app emits
		// keys monotonically (seqEntries).
		emit(Op{Kind: OpCompute, N: 16})
		h := mix64(key)
		buckets := uint64(nextPow2(keyRange)) * 8
		emit(Op{Kind: OpLoad, Addr: heapBase + (h % buckets)})
		var entry uint64
		if seqEntries {
			entry = heapBase + 0x100_0000 + key*96
		} else {
			entryRegion := uint64(keyRange*96) | 0xfff
			entry = heapBase + 0x100_0000 + (mix64(h)%entryRegion)&^0x3f
		}
		emit(Op{Kind: OpLoad, Addr: entry, Dep: !seqEntries})
		emit(Op{Kind: OpCompute, N: 3})
		emit(Op{Kind: OpStore, Addr: entry})
		// New-key insertions allocate; model them as spread over the
		// stream at the distinct-key rate. A bump/slab allocator
		// serves monotone insertions from warm slabs.
		if elements > 0 && ordinal%(maxInt(elements/maxInt(keyRange, 1), 1)) == 0 && !seqEntries {
			emit(Op{Kind: OpAlloc})
		}
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ForApp returns the modeled trace of one app under one container
// configuration. The trace parameters (instructions per element, access
// patterns, key distributions, dependency chains) are qualitative profiles
// of the Phoenix++ applications; their fidelity target is the
// *comparative* behaviour of Fig. 10, pinned by the package tests.
func ForApp(app string, kind container.Kind) (AppTrace, error) {
	switch app {
	case "HG":
		return hgTrace(kind), nil
	case "LR":
		return lrTrace(kind), nil
	case "WC":
		return wcTrace(kind), nil
	case "KM":
		return kmTrace(kind), nil
	case "PCA":
		return pcaTrace(kind), nil
	case "MM":
		return mmTrace(kind), nil
	default:
		return AppTrace{}, fmt.Errorf("perfmodel: unknown app %q", app)
	}
}

// hgTrace: sequential byte scan, three light emissions per pixel. Lowest
// instructions-per-byte in the suite.
func hgTrace(kind container.Kind) AppTrace {
	const pixels = 200_000
	const inputBytes = pixels * 3
	elements := pixels * 3
	t := AppTrace{App: "HG", Kind: kind, InputBytes: inputBytes,
		Elements: elements, ElemBytes: 16, DistinctKeys: 768}
	t.Gen = func(emitMap, emitCombine func(Op)) {
		rng := stats.Rng(7, "hg-keys")
		ord := 0
		for p := 0; p < pixels; p++ {
			for ch := 0; ch < 3; ch++ {
				emitMap(Op{Kind: OpLoad, Addr: inputBase + uint64(p*3+ch)})
				emitMap(Op{Kind: OpCompute, N: 2})
				key := uint64(ch*256 + rng.Intn(256))
				updateOps(emitCombine, kind, key, 768, ord, elements)
				ord++
			}
		}
	}
	return t
}

// lrTrace: two bytes per point, five trivial emissions. Light like HG.
func lrTrace(kind container.Kind) AppTrace {
	const points = 120_000
	const inputBytes = points * 2
	elements := points * 5
	t := AppTrace{App: "LR", Kind: kind, InputBytes: inputBytes,
		Elements: elements, ElemBytes: 16, DistinctKeys: 5}
	t.Gen = func(emitMap, emitCombine func(Op)) {
		ord := 0
		for p := 0; p < points; p++ {
			emitMap(Op{Kind: OpLoad, Addr: inputBase + uint64(p*2)})
			emitMap(Op{Kind: OpLoad, Addr: inputBase + uint64(p*2+1)})
			// x*x, y*y, x*y and the two raw sums.
			emitMap(Op{Kind: OpCompute, N: 8})
			for k := 0; k < 5; k++ {
				updateOps(emitCombine, kind, uint64(k), 5, ord, elements)
				ord++
			}
		}
	}
	return t
}

// wcTrace: byte-wise parsing (compare/branch per character), one hashed
// emission per word; always a hash-family container, so switching the
// suite to "stress" containers barely changes WC — the paper's "reasonable
// exception" in Fig. 10b.
func wcTrace(kind container.Kind) AppTrace {
	const bytes = 400_000
	const avgWord = 8
	const vocab = 5000
	words := bytes / avgWord
	t := AppTrace{App: "WC", Kind: kind, InputBytes: bytes,
		Elements: words, ElemBytes: 24, DistinctKeys: vocab}
	t.Gen = func(emitMap, emitCombine func(Op)) {
		rng := stats.Rng(11, "wc-keys")
		zipf := stats.NewZipf(rng, 1.5, vocab)
		for w := 0; w < words; w++ {
			for b := 0; b < avgWord; b += 4 {
				emitMap(Op{Kind: OpLoad, Addr: inputBase + uint64(w*avgWord+b)})
			}
			// Classification, boundary branches, slice handling.
			emitMap(Op{Kind: OpCompute, N: 3 * avgWord})
			// String keys hash per character before the update.
			emitCombine(Op{Kind: OpCompute, N: 2 * avgWord})
			updateOps(emitCombine, kind, zipf.Next(), vocab, w, words)
		}
	}
	return t
}

// kmTrace: the map finds each point's nearest centroid — K*D FP distance
// arithmetic over cache-resident centroids, an almost purely
// compute-intensive kernel (high IPB: many clusters over small-dimension
// points) — and emits one (cluster, &point) pair. The combine
// dereferences the point (the Phoenix KMeans points live behind a pointer
// array on a large heap, so this is a cold, serialized miss) and
// accumulates the D-dimensional vector into the cluster's accumulator.
// This is the paper's canonical complementary pair: CPU-intensive map,
// memory-intensive combine of comparable per-element cost (§III-B,
// §IV-E).
func kmTrace(kind container.Kind) AppTrace {
	const points = 4000
	const dims = 4
	const k = 64
	const pointRegion = 64 << 20
	inputBytes := points * dims * 8
	elements := points
	t := AppTrace{App: "KM", Kind: kind, InputBytes: inputBytes,
		Elements: elements, ElemBytes: 16, DistinctKeys: k * (dims + 1)}
	t.Gen = func(emitMap, emitCombine func(Op)) {
		rng := stats.Rng(13, "km-keys")
		for p := 0; p < points; p++ {
			// The mapper reads the point once (pointer + pointee); the
			// point fits one cache line.
			emitMap(Op{Kind: OpLoad, Addr: inputBase + uint64(p*8)})
			pbase := pointHeapBase + (mix64(uint64(p))%pointRegion)&^0x3f
			emitMap(Op{Kind: OpLoad, Addr: pbase, Dep: true})
			for c := 0; c < k; c++ {
				// Centroids are small and cache-resident; the
				// element-wise distance arithmetic vectorizes
				// (independent ops), only the min-tracking compare
				// serializes.
				emitMap(Op{Kind: OpLoad, Addr: centroidBase + uint64(c*dims*8)})
				emitMap(Op{Kind: OpCompute, N: 3 * dims})
				emitMap(Op{Kind: OpCompute, N: 2, Chained: true}) // min compare/branch
			}
			// Combine: chase the point pointer again (cold in the
			// combiner's cache), then vector-accumulate into the
			// cluster's sum and count slots.
			cl := uint64(rng.Intn(k))
			cbase := pointHeapBase + (mix64(uint64(p)+0x5bd1)%pointRegion)&^0x3f
			emitCombine(Op{Kind: OpLoad, Addr: cbase, Dep: true})
			emitCombine(Op{Kind: OpCompute, N: 2 * dims, Chained: true})
			updateOps(emitCombine, kind, cl*uint64(dims+1), k*(dims+1), p, elements)
			updateOps(emitCombine, kind, cl*uint64(dims+1)+uint64(dims), k*(dims+1), p, elements)
		}
	}
	return t
}

// pcaTrace: long sequential integer dot products over row pairs; one
// emission per pair. High IPB, prefetch-friendly streams, and independent
// (vectorizable) arithmetic — hence the paper's "high IPB value but rare
// stall cycles".
func pcaTrace(kind container.Kind) AppTrace {
	const n = 160
	pairs := n * (n + 1) / 2
	inputBytes := n * n * 4
	t := AppTrace{App: "PCA", Kind: kind, InputBytes: inputBytes,
		Elements: 2 * pairs, ElemBytes: 16, DistinctKeys: pairs}
	t.Gen = func(emitMap, emitCombine func(Op)) {
		// Each pair's covariance is emitted as two half-row partials,
		// so every container entry is updated twice: the second update
		// finds the entry warm, keeping the combine light under every
		// container — the paper's observation that PCA "will
		// practically demonstrate the same behavior as with the
		// default array container".
		ord := 0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				for half := 0; half < 2; half++ {
					for kk := half * n / 2; kk < (half+1)*n/2; kk += 16 {
						// One cache line of each row at a time; the
						// 16 element-wise sub/sub/mul/add groups are
						// independent and vectorize.
						emitMap(Op{Kind: OpLoad, Addr: inputBase + uint64((i*n+kk)*4)})
						emitMap(Op{Kind: OpLoad, Addr: inputBase + uint64((j*n+kk)*4)})
						emitMap(Op{Kind: OpCompute, N: 64})
					}
					updateOpsLoc(emitCombine, kind, uint64(ord/2), pairs, ord, pairs, true)
					ord++
				}
			}
		}
	}
	return t
}

// mmTrace: blocked C = A x B over a row sample. The map scans B
// row-by-row within the k-block (sequential, prefetched) keeping a row of
// C partials in registers/L1 — a compute-intensive kernel — and emits one
// partial per output cell per k-block. The combine folds partials into
// the output container, whose full-output-matrix span (each worker
// pre-allocates all of C with the default container, as §IV-E describes)
// makes the updates scattered and memory-intensive: MM's complementary
// structure, with KM the paper's strongest RAMR case.
func mmTrace(kind container.Kind) AppTrace {
	const n = 512
	const sampleRows = 24
	const kblocks = 4
	kb := n / kblocks
	cells := sampleRows * n
	elements := cells * kblocks
	// The sample covers sampleRows rows of A plus the same share of B.
	inputBytes := 2 * sampleRows * n * 4
	// With the default container every worker pre-allocates the FULL
	// output matrix (n*n cells) and its updates land in its true row —
	// the capacity overshoot §IV-E describes. A fitted hash container
	// only spans the cells actually touched ("the size is adjusted so
	// that it fits only the essential key-value pairs"), which is why
	// MM's stalls *drop* when switching containers in Fig. 10b.
	keyRange := n * n
	if kind != container.KindFixedArray {
		keyRange = cells
	}
	t := AppTrace{App: "MM", Kind: kind, InputBytes: inputBytes,
		Elements: elements, ElemBytes: 16, DistinctKeys: cells}
	t.Gen = func(emitMap, emitCombine func(Op)) {
		ord := 0
		rowStride := n / sampleRows
		for s := 0; s < sampleRows; s++ {
			for blk := 0; blk < kblocks; blk++ {
				// Row-ordered scan: A row chunk and B rows stream
				// sequentially; C partials live in registers/L1.
				for kk := blk * kb; kk < (blk+1)*kb; kk++ {
					emitMap(Op{Kind: OpLoad, Addr: inputBase + uint64((s*n+kk)*4)})
					for j := 0; j < n; j += 16 {
						emitMap(Op{Kind: OpLoad, Addr: matrixBBase + uint64((kk*n+j)*4)})
						emitMap(Op{Kind: OpCompute, N: 32})
					}
				}
				// Emit the row of partials. At the combiner, tiles
				// from many mappers interleave, so consecutive
				// updates jump between distant row bands of the
				// output — jitter models that interleaving.
				for j := 0; j < n; j++ {
					var key uint64
					if kind == container.KindFixedArray {
						row := s*rowStride + int(mix64(uint64(ord))%uint64(rowStride))
						key = uint64(row*n + j)
					} else {
						key = uint64((s*n + j) % cells)
					}
					updateOps(emitCombine, kind, key, keyRange, ord, elements)
					ord++
				}
			}
		}
	}
	return t
}

// AllApps lists the suite for iteration.
func AllApps() []string { return []string{"HG", "KM", "LR", "MM", "PCA", "WC"} }
