package perfmodel

import (
	"ramr/internal/container"
	"ramr/internal/topology"
)

// JobCosts carries the per-element phase costs of one app/container pair
// under both execution disciplines:
//
//   - Fused (Phoenix++): map and combine interleave on one thread, so the
//     input stream and the container working set fight over that thread's
//     caches; both phases are measured on one shared cache state.
//   - Split (RAMR): the mapper touches only the input (and the map-side
//     structures) while the combiner touches only its container, each on
//     its own cache state — and since the decoupled design allocates one
//     container per *combiner* rather than per worker, each container
//     enjoys roughly twice the shared-cache share.
//
// The difference between the two is the cache-isolation benefit the
// decoupled pipeline buys before queue costs are subtracted; both go into
// the runtime simulator (internal/simarch).
type JobCosts struct {
	FusedMap, FusedCombine PhaseCost
	SplitMap, SplitCombine PhaseCost
	Trace                  AppTrace
}

// combinerShareBoost is the shared-cache share multiplier for a decoupled
// combiner: with the default 1:1 mapper/combiner ratio, containers number
// half the fused case, doubling each one's share of the outer caches.
const combinerShareBoost = 2

// JobCostsFor measures the fused and split costs of one app/container pair
// on machine m.
func JobCostsFor(m *topology.Machine, app string, kind container.Kind) (JobCosts, error) {
	tr, err := ForApp(app, kind)
	if err != nil {
		return JobCosts{}, err
	}
	jc := JobCosts{Trace: tr}
	n := float64(tr.Elements)
	if n == 0 {
		n = 1
	}

	// Fused: both phases interleaved on one thread's cache state.
	fm, err := NewModel(m, 1)
	if err != nil {
		return JobCosts{}, err
	}
	mc, cc := fm.ExecutePhases(tr.Gen)
	jc.FusedMap = PhaseCost{CyclesPerElem: float64(mc.Cycles) / n, MemFrac: frac(mc.MemStall, mc.Cycles)}
	jc.FusedCombine = PhaseCost{CyclesPerElem: float64(cc.Cycles) / n, MemFrac: frac(cc.MemStall, cc.Cycles)}

	// Split map: the mapper's cache sees only map-phase traffic.
	sm, err := NewModel(m, 1)
	if err != nil {
		return JobCosts{}, err
	}
	mo, _ := sm.ExecutePhases(func(emitMap, _ func(Op)) {
		tr.Gen(emitMap, func(Op) {})
	})
	jc.SplitMap = PhaseCost{CyclesPerElem: float64(mo.Cycles) / n, MemFrac: frac(mo.MemStall, mo.Cycles)}

	// Split combine: the combiner's cache sees only its container, with
	// the doubled outer-cache share of the halved container population.
	boosted := boostSharedLevels(m, combinerShareBoost)
	sc, err := NewModel(boosted, 1)
	if err != nil {
		return JobCosts{}, err
	}
	_, co := sc.ExecutePhases(func(_, emitCombine func(Op)) {
		tr.Gen(func(Op) {}, emitCombine)
	})
	jc.SplitCombine = PhaseCost{CyclesPerElem: float64(co.Cycles) / n, MemFrac: frac(co.MemStall, co.Cycles)}
	return jc, nil
}

// boostSharedLevels returns a copy of m whose per-socket and global cache
// levels are enlarged by factor, so the per-thread fair share computed by
// cachesim.NewPerThread reflects the smaller container population.
func boostSharedLevels(m *topology.Machine, factor int) *topology.Machine {
	out := *m
	out.Caches = append([]topology.CacheLevel(nil), m.Caches...)
	for i := range out.Caches {
		switch out.Caches[i].Scope {
		case topology.ScopePerSocket, topology.ScopeGlobal:
			out.Caches[i].SizeBytes *= factor
		}
	}
	return &out
}
