// Package perfmodel supplies the performance counters the paper reads from
// hardware PMUs (§IV-E): instructions, memory-stall cycles and
// resource-stall cycles, from which the suitability metrics derive:
//
//	IPB  = instructions / input bytes          (workload intensity)
//	MSPI = memory-stall cycles / instruction   (L1/L2 miss pressure)
//	RSPI = resource-stall cycles / instruction (ROB/RS/LSQ pressure)
//
// Real PMCs are unavailable in this environment, so the counters come from
// a trace-driven architectural model: each application contributes a
// deterministic, *interleaved* map/combine access stream (traces.go) —
// interleaved because that is how the fused (Phoenix++) and overlapped
// (RAMR) runtimes actually execute, and because the container traffic must
// share cache capacity with the input traffic for the Fig. 10 container
// effects to appear. The stream executes against the cache simulator
// (internal/cachesim) plus a coarse core resource model. The paper itself
// stresses that "all three metrics are only meaningful when used
// comparatively"; the model preserves exactly that — the cross-application
// ordering and the direction of change when containers switch — which is
// what Fig. 10 claims. See DESIGN.md's substitution table.
package perfmodel

import (
	"fmt"

	"ramr/internal/cachesim"
	"ramr/internal/topology"
)

// OpKind tags one abstract operation of a trace.
type OpKind int

const (
	// OpCompute is a burst of N arithmetic/logic instructions.
	OpCompute OpKind = iota
	// OpLoad is one memory read at Addr.
	OpLoad
	// OpStore is one memory write at Addr.
	OpStore
	// OpAlloc is one dynamic allocation (malloc-like): bookkeeping
	// instructions plus scattered metadata traffic.
	OpAlloc
)

// Op is one element of an application trace.
type Op struct {
	Kind OpKind
	// N is the instruction count for OpCompute.
	N int
	// Chained marks an OpCompute burst whose instructions form a
	// dependency chain (e.g. a reduction accumulator), issuing at the
	// FP latency rather than the issue width — the "no eligible RS
	// entries" stall source.
	Chained bool
	// Addr is the byte address for OpLoad/OpStore.
	Addr uint64
	// Dep marks an OpLoad that is address-dependent on a preceding load
	// (a pointer chase). A dependent miss cannot overlap with anything:
	// the ROB fills behind it, so half its penalty is additionally
	// charged as a resource stall.
	Dep bool
}

// PhasedTrace generates an application's map/combine operation stream.
// Operations passed to emitMap are charged to the map phase, emitCombine
// to the combine phase; the generator interleaves them in program order.
type PhasedTrace func(emitMap, emitCombine func(Op))

// Counters accumulates raw model outputs.
type Counters struct {
	Inst     uint64
	Cycles   uint64
	MemStall uint64
	ResStall uint64
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.Inst += o.Inst
	c.Cycles += o.Cycles
	c.MemStall += o.MemStall
	c.ResStall += o.ResStall
}

// Metrics are the paper's three suitability metrics plus the raw counters.
type Metrics struct {
	IPB  float64
	MSPI float64
	RSPI float64
	Raw  Counters
}

// ComputeMetrics derives the metrics from counters and the input volume.
func ComputeMetrics(c Counters, inputBytes int) Metrics {
	m := Metrics{Raw: c}
	if inputBytes > 0 {
		m.IPB = float64(c.Inst) / float64(inputBytes)
	}
	if c.Inst > 0 {
		m.MSPI = float64(c.MemStall) / float64(c.Inst)
		m.RSPI = float64(c.ResStall) / float64(c.Inst)
	}
	return m
}

// String renders the metrics in Fig. 10's units.
func (m Metrics) String() string {
	return fmt.Sprintf("IPB=%.2f MSPI=%.4f RSPI=%.4f", m.IPB, m.MSPI, m.RSPI)
}

// Model executes traces against one hardware thread's cache view plus a
// coarse core resource model.
type Model struct {
	hier *cachesim.Hierarchy
	// issueWidth is the superscalar width (4 on Haswell, 2 on the
	// in-order Xeon Phi).
	issueWidth int
	// chainLatency is the dependent-op issue interval in cycles.
	chainLatency int
	// chainDamp divides the raw dependency-chain stall, modeling the
	// compiler's partial chain-breaking (unrolling with multiple
	// accumulators).
	chainDamp int
	// storeBuffer is how many outstanding store misses are absorbed
	// before the store buffer backpressures into resource stalls.
	storeBuffer int

	pendingStores int
}

// NewModel builds the model for one machine. The hardware thread sees its
// fair share of each cache level under full occupancy (cachesim
// NewPerThread); shareDiv further divides that share when the caller
// models extra co-resident working sets (1 for the standard view).
func NewModel(m *topology.Machine, shareDiv int) (*Model, error) {
	h, err := cachesim.NewPerThread(m)
	if err != nil {
		return nil, err
	}
	if shareDiv > 1 {
		h, err = cachesim.NewScaled(m, shareDiv)
	}
	if err != nil {
		return nil, err
	}
	width, chain, damp := 4, 3, 4
	if m.Name == "xeon-phi" {
		// In-order, narrower core: lower width, chains fully exposed.
		width, chain, damp = 2, 4, 2
	}
	return &Model{
		hier:         h,
		issueWidth:   width,
		chainLatency: chain,
		chainDamp:    damp,
		storeBuffer:  8,
	}, nil
}

// apply charges one operation to c. Each charge maps to a real mechanism:
//
//   - compute bursts cost N/width cycles; a dependency chain issues at
//     chainLatency per op with the (damped) excess charged as resource
//     stalls (RS occupancy);
//   - load misses charge their full serialized miss penalty to both the
//     cycle and memory-stall counters; how much of that stall overlaps
//     with other work is *discipline-dependent* (a batched combiner
//     pipelines independent misses, a fused worker hides at most an OOO
//     window's worth), so the runtime simulator applies the
//     memory-level-parallelism division, not this model;
//   - store misses charge half memory / half resource stalls once the
//     store buffer is saturated (LSQ pressure);
//   - allocations charge allocator bookkeeping instructions and metadata
//     traffic.
func (m *Model) apply(c *Counters, op Op) {
	l1 := m.hier.L1Latency()
	switch op.Kind {
	case OpCompute:
		if op.N <= 0 {
			return
		}
		c.Inst += uint64(op.N)
		ideal := uint64(op.N+m.issueWidth-1) / uint64(m.issueWidth)
		if op.Chained {
			raw := uint64(op.N * m.chainLatency)
			stall := (raw - ideal) / uint64(m.chainDamp)
			c.Cycles += ideal + stall
			c.ResStall += stall
		} else {
			c.Cycles += ideal
		}
	case OpLoad:
		c.Inst++
		lat := m.hier.Access(op.Addr)
		if lat > l1 {
			pen := uint64(lat - l1)
			c.MemStall += pen
			c.Cycles += pen + 1
			if op.Dep {
				// ROB fills behind the serialized pointer chase.
				c.ResStall += pen / 2
			}
		} else {
			c.Cycles++
		}
		if m.pendingStores > 0 {
			m.pendingStores--
		}
	case OpStore:
		c.Inst++
		lat := m.hier.Access(op.Addr)
		c.Cycles++
		if lat > l1 {
			pen := uint64(lat - l1)
			m.pendingStores++
			if m.pendingStores > m.storeBuffer {
				// Buffer full: the core actually waits.
				c.ResStall += pen / 2
				c.MemStall += pen / 2
				c.Cycles += pen / 2
				m.pendingStores = m.storeBuffer
			} else {
				// Absorbed: charge a token memory stall for the
				// write-allocate traffic.
				c.MemStall += pen / 4
			}
		}
	case OpAlloc:
		// Allocator fast path: bookkeeping plus free-list metadata
		// touches scattered over the heap.
		c.Inst += 60
		c.Cycles += 20
		lat := m.hier.Access(0x7f00_0000_0000 + (c.Inst*2654435761)%(1<<20))
		if lat > l1 {
			pen := uint64(lat - l1)
			c.MemStall += pen
			c.Cycles += pen
		}
	}
}

// ExecutePhases runs the interleaved trace and returns the map-phase and
// combine-phase counters separately (their sum is the Fig. 10 input; the
// split feeds the runtime simulator's per-phase costs).
func (m *Model) ExecutePhases(t PhasedTrace) (mapC, combC Counters) {
	t(func(op Op) { m.apply(&mapC, op) },
		func(op Op) { m.apply(&combC, op) })
	return mapC, combC
}

// Reset clears cache contents and internal state between runs.
func (m *Model) Reset() {
	m.hier.Reset()
	m.pendingStores = 0
}

// CacheStats exposes the underlying hierarchy statistics.
func (m *Model) CacheStats() []cachesim.LevelStats { return m.hier.Stats() }
