package perfmodel

import (
	"testing"

	"ramr/internal/container"
	"ramr/internal/topology"
)

func defaultKind(app string) container.Kind {
	if app == "WC" {
		return container.KindHash
	}
	return container.KindFixedArray
}

func stressKind(app string) container.Kind {
	if app == "MM" || app == "PCA" {
		return container.KindHash
	}
	return container.KindFixedHash
}

func metricsFor(t *testing.T, stress bool) map[string]Metrics {
	t.Helper()
	m := topology.HaswellServer()
	out := map[string]Metrics{}
	for _, app := range AllApps() {
		kind := defaultKind(app)
		if stress {
			kind = stressKind(app)
		}
		mt, err := Suitability(m, app, kind)
		if err != nil {
			t.Fatal(err)
		}
		out[app] = mt
	}
	return out
}

// TestFig10aShape pins the paper's §IV-E suitability analysis with default
// containers: HG and LR are "light workloads with few stalls"; KM and MM
// are "complex and suffer frequently from stalled cycles"; PCA has "high
// IPB but rare stall cycles"; WC is ambiguous.
func TestFig10aShape(t *testing.T) {
	m := metricsFor(t, false)

	// Intensity: the light apps sit clearly below the complex ones.
	for _, light := range []string{"HG", "LR", "WC"} {
		for _, heavy := range []string{"KM", "MM", "PCA"} {
			if m[light].IPB >= m[heavy].IPB {
				t.Errorf("IPB(%s)=%.1f should be below IPB(%s)=%.1f",
					light, m[light].IPB, heavy, m[heavy].IPB)
			}
		}
	}
	// HG and LR: few stalls.
	for _, app := range []string{"HG", "LR"} {
		if m[app].MSPI > 0.1 || m[app].RSPI > 0.1 {
			t.Errorf("%s should have few stalls, got %v", app, m[app])
		}
	}
	// KM: both stall kinds frequent; MM: memory stalls frequent.
	if m["KM"].MSPI < 0.2 || m["KM"].RSPI < 0.1 {
		t.Errorf("KM should stall frequently, got %v", m["KM"])
	}
	if m["MM"].MSPI < 0.2 {
		t.Errorf("MM should be memory-stalled, got %v", m["MM"])
	}
	// PCA: high IPB but very low stalls relative to KM/MM.
	if m["PCA"].MSPI > m["KM"].MSPI/4 || m["PCA"].RSPI > m["KM"].RSPI/4 {
		t.Errorf("PCA should have rare stalls, got %v vs KM %v", m["PCA"], m["KM"])
	}
}

// TestFig10bShape pins the container-switch directions: "an increase in
// the IPB, MSPI and RSPI metrics is expected", with WC "a reasonable
// exception" (it already used a hash container) and PCA "practically the
// same behavior".
func TestFig10bShape(t *testing.T) {
	def := metricsFor(t, false)
	str := metricsFor(t, true)

	// Hash-family containers add hash computation: IPB rises for every
	// app that switches (all but WC).
	for _, app := range []string{"HG", "KM", "LR", "MM", "PCA"} {
		if str[app].IPB <= def[app].IPB {
			t.Errorf("%s: IPB should rise with hash containers (%.2f -> %.2f)",
				app, def[app].IPB, str[app].IPB)
		}
	}
	// WC stays in the same regime (within 2x either way).
	if r := str["WC"].IPB / def["WC"].IPB; r < 0.5 || r > 2 {
		t.Errorf("WC IPB should be roughly unchanged, ratio %.2f", r)
	}
	// HG gains stalls from the scattered fixed-hash table.
	if str["HG"].MSPI <= def["HG"].MSPI || str["HG"].RSPI <= def["HG"].RSPI {
		t.Errorf("HG stalls should rise: %v -> %v", def["HG"], str["HG"])
	}
}

func TestSuitabilityDeterministic(t *testing.T) {
	m := topology.HaswellServer()
	a, err := Suitability(m, "KM", container.KindFixedArray)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Suitability(m, "KM", container.KindFixedArray)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("not deterministic: %v vs %v", a, b)
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := ForApp("XX", container.KindHash); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Suitability(topology.HaswellServer(), "XX", container.KindHash); err == nil {
		t.Fatal("unknown app accepted by Suitability")
	}
}

func TestCostsPositive(t *testing.T) {
	m := topology.HaswellServer()
	for _, app := range AllApps() {
		mc, cc, tr, err := Costs(m, app, defaultKind(app))
		if err != nil {
			t.Fatal(err)
		}
		if mc.CyclesPerElem <= 0 || cc.CyclesPerElem <= 0 {
			t.Fatalf("%s: non-positive phase costs %+v %+v", app, mc, cc)
		}
		if mc.MemFrac < 0 || mc.MemFrac > 1 || cc.MemFrac < 0 || cc.MemFrac > 1 {
			t.Fatalf("%s: memfrac out of range", app)
		}
		if tr.Elements <= 0 || tr.InputBytes <= 0 || tr.ElemBytes <= 0 {
			t.Fatalf("%s: bad trace metadata %+v", app, tr)
		}
	}
}

// TestJobCostsFusedVsSplit: decoupling can only shed cache interference,
// never add it, so per-phase split costs must not exceed fused costs by
// more than measurement jitter.
func TestJobCostsFusedVsSplit(t *testing.T) {
	m := topology.HaswellServer()
	for _, app := range AllApps() {
		jc, err := JobCostsFor(m, app, defaultKind(app))
		if err != nil {
			t.Fatal(err)
		}
		if jc.SplitMap.CyclesPerElem > jc.FusedMap.CyclesPerElem*1.05 {
			t.Errorf("%s: split map (%.1f) costlier than fused (%.1f)",
				app, jc.SplitMap.CyclesPerElem, jc.FusedMap.CyclesPerElem)
		}
		if jc.SplitCombine.CyclesPerElem > jc.FusedCombine.CyclesPerElem*1.05 {
			t.Errorf("%s: split combine (%.1f) costlier than fused (%.1f)",
				app, jc.SplitCombine.CyclesPerElem, jc.FusedCombine.CyclesPerElem)
		}
	}
}

// TestChainedComputeStalls: dependency chains must cost more than
// independent bursts and charge resource stalls.
func TestChainedComputeStalls(t *testing.T) {
	m, err := NewModel(topology.HaswellServer(), 1)
	if err != nil {
		t.Fatal(err)
	}
	indep, _ := m.ExecutePhases(func(emitMap, _ func(Op)) {
		emitMap(Op{Kind: OpCompute, N: 1000})
	})
	m.Reset()
	chained, _ := m.ExecutePhases(func(emitMap, _ func(Op)) {
		emitMap(Op{Kind: OpCompute, N: 1000, Chained: true})
	})
	if chained.Cycles <= indep.Cycles {
		t.Fatal("chained burst should cost more cycles")
	}
	if chained.ResStall == 0 || indep.ResStall != 0 {
		t.Fatalf("resource stalls: chained %d, independent %d", chained.ResStall, indep.ResStall)
	}
	if chained.Inst != indep.Inst {
		t.Fatal("instruction counts should match")
	}
}

// TestDependentLoadStalls: pointer chases over a cold region charge both
// memory and resource stalls; plain loads only memory stalls.
func TestDependentLoadStalls(t *testing.T) {
	m, _ := NewModel(topology.HaswellServer(), 1)
	plain, _ := m.ExecutePhases(func(emitMap, _ func(Op)) {
		for i := 0; i < 64; i++ {
			emitMap(Op{Kind: OpLoad, Addr: uint64(i) * 1 << 16})
		}
	})
	m.Reset()
	dep, _ := m.ExecutePhases(func(emitMap, _ func(Op)) {
		for i := 0; i < 64; i++ {
			emitMap(Op{Kind: OpLoad, Addr: uint64(i+100) * 1 << 16, Dep: true})
		}
	})
	if plain.ResStall != 0 {
		t.Fatal("plain load charged resource stalls")
	}
	if dep.ResStall == 0 {
		t.Fatal("dependent miss charged no resource stalls")
	}
	if plain.MemStall == 0 || dep.MemStall == 0 {
		t.Fatal("misses charged no memory stalls")
	}
}

func TestComputeMetricsEdges(t *testing.T) {
	m := ComputeMetrics(Counters{}, 0)
	if m.IPB != 0 || m.MSPI != 0 || m.RSPI != 0 {
		t.Fatal("zero counters should yield zero metrics")
	}
	m2 := ComputeMetrics(Counters{Inst: 100, MemStall: 50, ResStall: 25}, 10)
	if m2.IPB != 10 || m2.MSPI != 0.5 || m2.RSPI != 0.25 {
		t.Fatalf("%v", m2)
	}
	if m2.String() == "" {
		t.Fatal("empty String")
	}
}

// TestPhiModelSerializesMore: the same trace costs relatively more on the
// in-order Phi model than on Haswell (per-cycle terms, not wall time).
func TestPhiModelSerializesMore(t *testing.T) {
	trace := func(emitMap, _ func(Op)) {
		for i := 0; i < 100; i++ {
			emitMap(Op{Kind: OpCompute, N: 40, Chained: true})
		}
	}
	h, _ := NewModel(topology.HaswellServer(), 1)
	p, _ := NewModel(topology.XeonPhi(), 1)
	hc, _ := h.ExecutePhases(trace)
	pc, _ := p.ExecutePhases(trace)
	if pc.Cycles <= hc.Cycles {
		t.Fatalf("in-order model should be slower: phi %d vs hwl %d", pc.Cycles, hc.Cycles)
	}
}

// TestBoostSharedLevels: only socket/global levels grow; per-core stays.
func TestBoostSharedLevels(t *testing.T) {
	m := topology.HaswellServer()
	b := boostSharedLevels(m, 2)
	for i, c := range m.Caches {
		got := b.Caches[i].SizeBytes
		switch c.Scope {
		case topology.ScopePerCore:
			if got != c.SizeBytes {
				t.Fatalf("L%d per-core level scaled", c.Level)
			}
		default:
			if got != 2*c.SizeBytes {
				t.Fatalf("L%d shared level not scaled", c.Level)
			}
		}
	}
	// The original machine must be untouched.
	if m.Caches[2].SizeBytes != topology.HaswellServer().Caches[2].SizeBytes {
		t.Fatal("boostSharedLevels mutated its input")
	}
}

func TestCacheStatsExposed(t *testing.T) {
	m, err := NewModel(topology.HaswellServer(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m.ExecutePhases(func(emitMap, _ func(Op)) {
		emitMap(Op{Kind: OpLoad, Addr: 0x1234})
	})
	st := m.CacheStats()
	if len(st) == 0 || st[0].Hits+st[0].Misses == 0 {
		t.Fatal("cache stats empty after an access")
	}
}
