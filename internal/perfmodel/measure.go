package perfmodel

import (
	"ramr/internal/container"
	"ramr/internal/topology"
)

// Suitability computes the Fig. 10 metrics (IPB, MSPI, RSPI) for one
// application under one container configuration on machine m. As in the
// paper, the metrics "concern the map/combine phase only": the model
// executes the interleaved map/combine trace on one hardware thread's
// cache view (capacity shared with its SMT siblings) and aggregates both
// phases' counters.
func Suitability(m *topology.Machine, app string, kind container.Kind) (Metrics, error) {
	tr, err := ForApp(app, kind)
	if err != nil {
		return Metrics{}, err
	}
	model, err := NewModel(m, 1)
	if err != nil {
		return Metrics{}, err
	}
	mapC, combC := model.ExecutePhases(tr.Gen)
	mapC.Add(combC)
	return ComputeMetrics(mapC, tr.InputBytes), nil
}

// PhaseCost is the per-emitted-element cost of one phase, the currency of
// the runtime simulator (internal/simarch).
type PhaseCost struct {
	// CyclesPerElem is the average cycles one element costs this phase.
	CyclesPerElem float64
	// MemFrac is the fraction of those cycles stalled on memory —
	// the "complementary characteristics" dial: a compute-heavy phase
	// has a low MemFrac, a memory-heavy one a high MemFrac.
	MemFrac float64
}

// Costs measures both phases of an app/container pair on machine m and
// returns their per-element costs plus the trace metadata. The phases
// execute interleaved (sharing cache state), exactly as they do in both
// runtimes.
func Costs(m *topology.Machine, app string, kind container.Kind) (mapCost, combineCost PhaseCost, tr AppTrace, err error) {
	tr, err = ForApp(app, kind)
	if err != nil {
		return
	}
	model, merr := NewModel(m, 1)
	if merr != nil {
		err = merr
		return
	}
	mc, cc := model.ExecutePhases(tr.Gen)
	n := float64(tr.Elements)
	if n == 0 {
		n = 1
	}
	mapCost = PhaseCost{
		CyclesPerElem: float64(mc.Cycles) / n,
		MemFrac:       frac(mc.MemStall, mc.Cycles),
	}
	combineCost = PhaseCost{
		CyclesPerElem: float64(cc.Cycles) / n,
		MemFrac:       frac(cc.MemStall, cc.Cycles),
	}
	return
}

func frac(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	f := float64(num) / float64(den)
	if f > 1 {
		f = 1
	}
	return f
}
