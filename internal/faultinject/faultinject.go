// Package faultinject is the deterministic fault-injection harness for the
// two execution engines' slow paths: worker panics, injected delays that
// push the SPSC rings to their full/empty extremes, and context
// cancellation at awkward points (mid-map, mid-drain, pre-reduce).
//
// The paper's decoupled pipeline (§III-A) has a hard liveness contract: a
// producer blocked on a full ring is freed only by its combiner, so every
// failure path must keep consuming until each queue is drained. This
// package exists to drive those paths on purpose — via the test-only
// mr.Config.Hooks surface, nil in production — and to assert afterwards
// that the contract held: the fault surfaced as an ordinary error (never a
// process panic), every queue drained, element conservation held
// (Pushes == Pops), and no worker goroutine leaked.
//
// Everything is derived from a single seed, so a failing scenario from the
// randomized sweep reproduces exactly from its seed alone.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ramr/internal/container"
	"ramr/internal/mr"
	"ramr/internal/spsc"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None runs the scenario fault-free (the sweep's control arm).
	None Kind = iota
	// PanicMapTask panics at the Nth task start of map worker W.
	PanicMapTask
	// PanicMapEmit panics at the Nth emit of map worker W — after the
	// pair count has been staged in the producer-local slab, the
	// half-built-slab case the engine must discard.
	PanicMapEmit
	// PanicCombine panics at the Nth user-Combine call (injected by
	// wrapping the spec's Combine; works on both engines).
	PanicCombine
	// PanicCombineBatch panics at the Nth batch fold of combiner W
	// (RAMR engine only; a no-op scenario on Phoenix).
	PanicCombineBatch
	// PanicReduce panics at the Nth Reduce call (wrapped Reduce).
	PanicReduce
	// DelayMap sleeps at every Every-th emit of worker W, starving the
	// rings toward the empty extreme.
	DelayMap
	// DelayCombine sleeps before every Every-th batch fold of combiner
	// W, backing producers up against full rings (RAMR engine only).
	DelayCombine
	// CancelMidMap cancels the run's context at the Nth emit of worker
	// W, while the pipeline is in full flight.
	CancelMidMap
	// CancelMidDrain cancels when combiner W first enters its
	// force-drain tail (RAMR engine only).
	CancelMidDrain
	// CancelPreReduce cancels at the barrier between map-combine and
	// reduce.
	CancelPreReduce

	numKinds
)

// String names the fault for reports.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case PanicMapTask:
		return "panic-map-task"
	case PanicMapEmit:
		return "panic-map-emit"
	case PanicCombine:
		return "panic-combine"
	case PanicCombineBatch:
		return "panic-combine-batch"
	case PanicReduce:
		return "panic-reduce"
	case DelayMap:
		return "delay-map"
	case DelayCombine:
		return "delay-combine"
	case CancelMidMap:
		return "cancel-mid-map"
	case CancelMidDrain:
		return "cancel-mid-drain"
	case CancelPreReduce:
		return "cancel-pre-reduce"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsPanic reports whether the fault surfaces as a worker panic.
func (k Kind) IsPanic() bool {
	switch k {
	case PanicMapTask, PanicMapEmit, PanicCombine, PanicCombineBatch, PanicReduce:
		return true
	}
	return false
}

// IsCancel reports whether the fault cancels the run's context.
func (k Kind) IsCancel() bool {
	switch k {
	case CancelMidMap, CancelMidDrain, CancelPreReduce:
		return true
	}
	return false
}

// Plan is one fully-determined fault scenario.
type Plan struct {
	// Seed reproduces the scenario.
	Seed int64
	// Kind is the fault to inject.
	Kind Kind
	// Worker is the target worker index for worker-scoped kinds.
	Worker int
	// Nth is the 1-based call ordinal that trips a panic or cancel.
	Nth int64
	// Every is the period of delay kinds: act on every Every-th call.
	Every int64
	// Delay is the sleep length of delay kinds.
	Delay time.Duration
}

// String renders the plan for failure messages.
func (p Plan) String() string {
	return fmt.Sprintf("seed=%d kind=%v worker=%d nth=%d every=%d delay=%v",
		p.Seed, p.Kind, p.Worker, p.Nth, p.Every, p.Delay)
}

// NewPlan derives a deterministic scenario from seed for a run with
// mapWorkers map-side and combineWorkers combine-side workers. The Nth
// ordinals are kept small enough that most scenarios actually fire on
// modest inputs; a plan that never fires is still a valid (fault-free)
// scenario and the sweep verifies its result instead.
func NewPlan(seed int64, mapWorkers, combineWorkers int) Plan {
	rng := rand.New(rand.NewSource(seed))
	p := Plan{
		Seed:  seed,
		Kind:  Kind(rng.Intn(int(numKinds))),
		Nth:   1 + int64(rng.Intn(300)),
		Every: 32 + int64(rng.Intn(96)),
		Delay: time.Duration(20+rng.Intn(180)) * time.Microsecond,
	}
	switch p.Kind {
	case PanicCombineBatch, DelayCombine, CancelMidDrain:
		p.Worker = rng.Intn(combineWorkers)
	default:
		p.Worker = rng.Intn(mapWorkers)
	}
	return p
}

// InjectedPanic is the value injected faults panic with, so sweeps can
// tell an injected failure from an accidental one.
type InjectedPanic struct{ Plan Plan }

// String renders the panic value as it appears inside a PanicError.
func (p InjectedPanic) String() string { return "faultinject: " + p.Plan.String() }

// Injector executes one Plan against one run: it counts hook and wrapper
// calls and fires the planned fault at the planned ordinal. One Injector
// serves exactly one run; build a fresh one per scenario.
type Injector struct {
	plan   Plan
	cancel context.CancelFunc
	fired  atomic.Bool

	emits   []atomic.Int64 // per map worker
	tasks   []atomic.Int64 // per map worker
	batches []atomic.Int64 // per combiner
	combine atomic.Int64   // global user-Combine calls (wrapped)
	reduce  atomic.Int64   // global Reduce calls (wrapped)

	rec Recorder
}

// NewInjector builds the injector for plan. cancel is the run context's
// cancel function, required by the Cancel* kinds (pass a no-op for plans
// that cannot cancel). Worker counts bound the per-worker counters.
func NewInjector(plan Plan, mapWorkers, combineWorkers int, cancel context.CancelFunc) *Injector {
	if cancel == nil {
		cancel = func() {}
	}
	return &Injector{
		plan:    plan,
		cancel:  cancel,
		emits:   make([]atomic.Int64, mapWorkers),
		tasks:   make([]atomic.Int64, mapWorkers),
		batches: make([]atomic.Int64, combineWorkers),
	}
}

// Plan returns the scenario this injector executes.
func (in *Injector) Plan() Plan { return in.plan }

// Fired reports whether the planned fault actually triggered. A plan
// whose target ordinal was never reached leaves the run fault-free.
func (in *Injector) Fired() bool { return in.fired.Load() }

// QueueReports returns the per-queue drain/stats reports recorded through
// the QueueObserver hook (RAMR runs only).
func (in *Injector) QueueReports() []QueueReport { return in.rec.Reports() }

// fire marks the fault as triggered.
func (in *Injector) fire() { in.fired.Store(true) }

// Hooks returns the engine-side hook set implementing the plan; assign it
// to Config.Hooks. The hook set also records queue reports for the
// invariant checks.
func (in *Injector) Hooks() *mr.Hooks {
	p := in.plan
	h := &mr.Hooks{
		QueueObserver: in.rec.Observer(),
	}
	h.MapTask = func(w int) {
		if w >= len(in.tasks) {
			return
		}
		n := in.tasks[w].Add(1)
		if p.Kind == PanicMapTask && w == p.Worker && n == p.Nth {
			in.fire()
			panic(InjectedPanic{p})
		}
	}
	h.MapEmit = func(w int) {
		if w >= len(in.emits) {
			return
		}
		n := in.emits[w].Add(1)
		if w != p.Worker {
			return
		}
		switch p.Kind {
		case PanicMapEmit:
			if n == p.Nth {
				in.fire()
				panic(InjectedPanic{p})
			}
		case DelayMap:
			if n%p.Every == 0 {
				in.fire()
				time.Sleep(p.Delay)
			}
		case CancelMidMap:
			if n == p.Nth {
				in.fire()
				in.cancel()
			}
		}
	}
	h.CombineBatch = func(w int) {
		if w >= len(in.batches) {
			return
		}
		n := in.batches[w].Add(1)
		if w != p.Worker {
			return
		}
		switch p.Kind {
		case PanicCombineBatch:
			if n == p.Nth {
				in.fire()
				panic(InjectedPanic{p})
			}
		case DelayCombine:
			if n%p.Every == 0 {
				in.fire()
				time.Sleep(p.Delay)
			}
		}
	}
	h.CombineDrain = func(w int) {
		if p.Kind == CancelMidDrain && w == p.Worker {
			in.fire()
			in.cancel()
		}
	}
	h.PreReduce = func() {
		if p.Kind == CancelPreReduce {
			in.fire()
			in.cancel()
		}
	}
	return h
}

// CombineCall counts one user-Combine invocation and reports whether the
// wrapper must panic. Combine runs concurrently on many workers, so the
// ordinal is global rather than per worker.
func (in *Injector) CombineCall() bool {
	if in.plan.Kind != PanicCombine {
		return false
	}
	if in.combine.Add(1) != in.plan.Nth {
		return false
	}
	in.fire()
	return true
}

// ReduceCall counts one Reduce invocation and reports whether the wrapper
// must panic.
func (in *Injector) ReduceCall() bool {
	if in.plan.Kind != PanicReduce {
		return false
	}
	if in.reduce.Add(1) != in.plan.Nth {
		return false
	}
	in.fire()
	return true
}

// WrapCombine instruments a user Combine with the injector's PanicCombine
// fault. The fused Phoenix engine has no combine-side hook (map and
// combine run on one worker), so combine faults are injected by wrapping
// the user function on both engines.
func WrapCombine[V any](in *Injector, f container.Combine[V]) container.Combine[V] {
	return func(a, b V) V {
		if in.CombineCall() {
			panic(InjectedPanic{in.plan})
		}
		return f(a, b)
	}
}

// WrapReduce instruments a user Reduce with the injector's PanicReduce
// fault.
func WrapReduce[K comparable, V, R any](in *Injector, f func(K, V) R) func(K, V) R {
	return func(k K, v V) R {
		if in.ReduceCall() {
			panic(InjectedPanic{in.plan})
		}
		return f(k, v)
	}
}

// Recorder collects QueueObserver reports so invariants can be checked
// after a run, with or without a full Injector. The zero value is ready.
type Recorder struct {
	mu      sync.Mutex
	reports []QueueReport
}

// Observer returns the callback to assign to Hooks.QueueObserver.
func (r *Recorder) Observer() func(int, bool, spsc.Stats) {
	return func(queue int, drained bool, stats spsc.Stats) {
		r.mu.Lock()
		r.reports = append(r.reports, QueueReport{Queue: queue, Drained: drained, Stats: stats})
		r.mu.Unlock()
	}
}

// Reports returns the reports recorded so far.
func (r *Recorder) Reports() []QueueReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]QueueReport(nil), r.reports...)
}
