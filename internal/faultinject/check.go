package faultinject

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"ramr/internal/spsc"
)

// QueueReport is one mapper queue's state after pipeline shutdown, as
// delivered through the QueueObserver hook.
type QueueReport struct {
	// Queue is the mapper/queue index.
	Queue int
	// Drained reports spsc.Queue.Drained at observation time.
	Drained bool
	// Stats is the queue's counter snapshot.
	Stats spsc.Stats
}

// CheckQueues asserts the drain contract over the recorded reports: every
// queue was closed and fully consumed, and element conservation held —
// Pushes == Pops, whether the elements were combined or discarded on an
// abort path. It returns the first violation, or nil.
func CheckQueues(reports []QueueReport) error {
	for _, r := range reports {
		if !r.Drained {
			return fmt.Errorf("faultinject: queue %d not drained after shutdown (pushes=%d pops=%d)",
				r.Queue, r.Stats.Pushes, r.Stats.Pops)
		}
		if r.Stats.Pushes != r.Stats.Pops {
			return fmt.Errorf("faultinject: queue %d conservation violated: pushes=%d pops=%d",
				r.Queue, r.Stats.Pushes, r.Stats.Pops)
		}
	}
	return nil
}

// workerSites are the stack substrings that identify a goroutine as
// belonging to the runtime's worker pools or queue machinery. The list
// names functions, not bare package paths, so a test function in the same
// package (whose own stack mentions the package) never matches itself.
var workerSites = []string{
	"ramr/internal/core.RunContext",
	"ramr/internal/core.startElastic",
	"ramr/internal/core.runElasticCombiner",
	"ramr/internal/phoenix.RunContext",
	"ramr/internal/sched.(*Scheduler).startLocked",
	"ramr/internal/sched.runSafe",
	"ramr/internal/stream.(",
	"ramr/internal/spsc.(",
	"ramr/internal/mr.MergeContainers",
	"ramr/internal/mr.ReduceAll",
	"ramr/internal/mr.SortPairsParallel",
	"ramr/internal/container.Merge",
}

// WorkerStacks returns the stack blocks of live goroutines that are
// running inside, or were created by, the runtime's worker machinery.
func WorkerStacks() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, block := range strings.Split(string(buf[:n]), "\n\n") {
		for _, site := range workerSites {
			if strings.Contains(block, site) {
				out = append(out, block)
				break
			}
		}
	}
	return out
}

// AwaitNoWorkers polls until no worker goroutines remain, returning nil,
// or returns the leaked stacks once the timeout expires. Both engines
// join their pools before returning, so anything still alive shortly
// after a run is a lifecycle leak — the poll only absorbs scheduler lag
// between a goroutine's final send and its exit.
func AwaitNoWorkers(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		leaked := WorkerStacks()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(time.Millisecond)
	}
}
