package faultinject_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"ramr/internal/core"
	"ramr/internal/faultinject"
	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/topology"
)

// stealScenario is one seeded skewed-input configuration with chunked
// work stealing on: a multi-group machine, per-worker skew (group-0
// mappers are slowed, so the other group's mappers must cross the group
// boundary to drain the backlog) and a fault plan (possibly None)
// running against the same pipeline.
type stealScenario struct {
	cfg    mr.Config
	splits int
	emits  int
	// drag slows the mappers of locality group 0 per task, creating the
	// operation-level imbalance stealing exists to kill.
	drag time.Duration
}

func newStealScenario(seed int64) stealScenario {
	rng := rand.New(rand.NewSource(seed ^ 0x6a09e667f3bcc908))
	var sc stealScenario
	cfg := mr.DefaultConfig()
	cfg.Mappers = 4
	cfg.Combiners = 1 + rng.Intn(2)
	cfg.QueueCapacity = []int{16, 64, 256}[rng.Intn(3)]
	cfg.BatchSize = []int{4, 16, 64}[rng.Intn(3)]
	cfg.EmitBatch = []int{1, 8}[rng.Intn(2)]
	cfg.TaskSize = 1
	cfg.Wait = []spsc.WaitPolicy{spsc.WaitSleep, spsc.WaitBusy}[rng.Intn(2)]
	if rng.Intn(2) == 0 {
		cfg.Machine = topology.Fig3Example()
	} else {
		cfg.Machine = nonDenseMachine()
	}
	cfg.Pin = mr.PinNone // mapper i lands in group i % 2
	cfg.Steal = mr.StealChunked
	sc.cfg = cfg
	sc.splits = 24 + rng.Intn(17)
	sc.emits = 50 + rng.Intn(150)
	sc.drag = time.Duration(200+rng.Intn(300)) * time.Microsecond
	return sc
}

// runStealScenario executes one seeded skewed scenario and asserts the
// stealing invariants on top of the usual lifecycle contract: queue
// conservation and drain, no goroutine leaks, and — on clean runs —
// exact element conservation and balanced steal counters (every stolen
// task was executed remotely, none lost, none run twice). It returns how
// many tasks were stolen.
func runStealScenario(t *testing.T, seed int64) uint64 {
	t.Helper()
	sc := newStealScenario(seed)

	mapWorkers := sc.cfg.Mappers
	plan := faultinject.NewPlan(seed, mapWorkers, sc.cfg.Combiners)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := faultinject.NewInjector(plan, mapWorkers, sc.cfg.Combiners, cancel)

	spec := sweepSpec(sc.splits, sc.emits)
	spec.Combine = faultinject.WrapCombine(in, spec.Combine)
	spec.Reduce = faultinject.WrapReduce(in, spec.Reduce)
	hooks := in.Hooks()
	// Drag only the even (group-0) mappers: their deque backs up while
	// the odd mappers go idle and steal — the injector's own MapTask
	// fault still fires afterwards.
	innerTask := hooks.MapTask
	hooks.MapTask = func(w int) {
		if w%2 == 0 {
			time.Sleep(sc.drag)
		}
		if innerTask != nil {
			innerTask(w)
		}
	}
	sc.cfg.Hooks = hooks

	var res *mr.Result[int, int]
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err = core.RunContext(ctx, spec, sc.cfg)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("steal churn %v: run wedged", plan)
	}

	fired := in.Fired()
	var stolen uint64
	switch {
	case err == nil:
		if fired && !(plan.Kind == faultinject.DelayMap || plan.Kind == faultinject.DelayCombine) {
			t.Fatalf("steal churn %v: fault fired but run reported success", plan)
		}
		total := 0
		for _, p := range res.Pairs {
			total += p.Value
		}
		if want := sc.splits * sc.emits; total != want {
			t.Fatalf("steal churn %v: total = %d, want %d", plan, total, want)
		}
		if !res.Steal.Balanced() {
			t.Fatalf("steal churn %v: steal counters unbalanced: %s", plan, res.Steal.String())
		}
		if got := res.Steal.TotalTasks(); got != uint64(sc.splits) {
			t.Fatalf("steal churn %v: takes cover %d tasks, want %d", plan, got, sc.splits)
		}
		stolen = res.Steal.StolenTasks()
	case plan.Kind.IsPanic() && fired:
		var pe *mr.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("steal churn %v: injected panic surfaced as %T (%v)", plan, err, err)
		}
	case plan.Kind.IsCancel() && fired:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("steal churn %v: err = %v, want context.Canceled", plan, err)
		}
	default:
		t.Fatalf("steal churn %v: unexpected error with no fired fault: %v", plan, err)
	}

	reports := in.QueueReports()
	if len(reports) != sc.cfg.Mappers {
		t.Fatalf("steal churn %v: %d queue reports, want %d", plan, len(reports), sc.cfg.Mappers)
	}
	if qerr := faultinject.CheckQueues(reports); qerr != nil {
		t.Fatalf("steal churn %v: %v", plan, qerr)
	}
	if leaked := faultinject.AwaitNoWorkers(10 * time.Second); len(leaked) > 0 {
		t.Fatalf("steal churn %v: %d leaked worker goroutines:\n%s", plan, len(leaked), leaked[0])
	}
	return stolen
}

// TestStealChurnSweep drives seeded skewed inputs with chunked stealing
// on — alone and under injected panics, delays and cancellations — and
// asserts no element is ever lost or duplicated across a group-boundary
// steal, steal counters balance exactly on every clean run, and no
// worker leaks even when a thief dies mid-batch. Across the sweep, some
// run must actually have stolen (an all-local sweep would be vacuous).
func TestStealChurnSweep(t *testing.T) {
	scenarios := int64(48)
	if testing.Short() {
		scenarios = 12
	}
	var totalStolen uint64
	for seed := int64(0); seed < scenarios; seed++ {
		totalStolen += runStealScenario(t, seed)
		if t.Failed() {
			return
		}
	}
	if totalStolen == 0 {
		t.Fatal("no task was stolen across the whole sweep")
	}
}

// TestStealChurnSeed replays one steal-churn scenario:
// RAMR_STEAL_SEED=17 go test -run TestStealChurnSeed ./internal/faultinject
func TestStealChurnSeed(t *testing.T) {
	s := os.Getenv("RAMR_STEAL_SEED")
	if s == "" {
		t.Skip("set RAMR_STEAL_SEED to replay one steal-churn scenario")
	}
	var seed int64
	if _, err := fmt.Sscan(s, &seed); err != nil {
		t.Fatalf("RAMR_STEAL_SEED=%q: %v", s, err)
	}
	runStealScenario(t, seed)
}
