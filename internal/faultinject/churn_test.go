package faultinject_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"ramr/internal/core"
	"ramr/internal/faultinject"
	"ramr/internal/mr"
	"ramr/internal/spsc"
	"ramr/internal/telemetry"
	"ramr/internal/topology"
	"ramr/internal/tuner"
)

// churnScenario is one seeded elastic-pool configuration: a scripted
// grow/shrink schedule replayed at high epoch rate while a fault plan
// (possibly None) runs against the same pipeline.
type churnScenario struct {
	cfg    mr.Config
	maxC   int
	splits int
	emits  int
	// stretch is the per-task sleep that keeps the map phase alive long
	// enough for the schedule to churn ownership mid-run.
	stretch time.Duration
}

func newChurnScenario(seed int64) churnScenario {
	rng := rand.New(rand.NewSource(seed ^ 0x7f4a7c159e3779b9))
	var sc churnScenario
	cfg := mr.DefaultConfig()
	cfg.Mappers = 2 + rng.Intn(3) // 2..4
	cfg.Combiners = 1 + rng.Intn(cfg.Mappers)
	cfg.QueueCapacity = []int{16, 64, 256}[rng.Intn(3)]
	cfg.BatchSize = []int{4, 16, 64}[rng.Intn(3)]
	cfg.EmitBatch = []int{1, 8, 64}[rng.Intn(3)]
	cfg.TaskSize = 1
	cfg.Wait = []spsc.WaitPolicy{spsc.WaitSleep, spsc.WaitBusy}[rng.Intn(2)]
	switch rng.Intn(3) {
	case 0:
		cfg.Machine = topology.Flat(4)
	case 1:
		cfg.Machine = topology.Fig3Example()
	default:
		cfg.Machine = nonDenseMachine()
	}
	cfg.Pin = mr.PinNone
	cfg.Telemetry = telemetry.New()
	cfg.Telemetry.Interval = 40 * time.Microsecond

	sc.maxC = cfg.Mappers
	sched := make([]int, 5+rng.Intn(8))
	for i := range sched {
		sched[i] = 1 + rng.Intn(sc.maxC)
	}
	cfg.Tuner = &tuner.Config{
		Seed:         seed,
		EpochTicks:   1,
		MaxCombiners: sc.maxC,
		Schedule:     sched,
	}
	sc.cfg = cfg
	sc.splits = 8 + rng.Intn(9)
	sc.emits = 100 + rng.Intn(300)
	sc.stretch = time.Duration(100+rng.Intn(200)) * time.Microsecond
	return sc
}

// runChurnScenario executes one seeded churn scenario on the RAMR engine
// and asserts the elastic-pool invariants on top of the usual lifecycle
// contract: exactly-one-consumer-per-ring (the engine's CAS guards are
// armed because Hooks is set — any overlap surfaces as a run error),
// queue conservation and drain, no goroutine leaks, and pool sizes inside
// the configured bounds. It returns how many scripted resizes fired.
func runChurnScenario(t *testing.T, seed int64) int {
	t.Helper()
	sc := newChurnScenario(seed)

	mapWorkers := sc.cfg.Mappers
	plan := faultinject.NewPlan(seed, mapWorkers, sc.maxC)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := faultinject.NewInjector(plan, mapWorkers, sc.maxC, cancel)

	spec := sweepSpec(sc.splits, sc.emits)
	spec.Combine = faultinject.WrapCombine(in, spec.Combine)
	spec.Reduce = faultinject.WrapReduce(in, spec.Reduce)
	hooks := in.Hooks()
	// Stretch every map task so the run spans many controller epochs; the
	// injector's own MapTask fault still fires afterwards.
	innerTask := hooks.MapTask
	hooks.MapTask = func(w int) {
		time.Sleep(sc.stretch)
		if innerTask != nil {
			innerTask(w)
		}
	}
	sc.cfg.Hooks = hooks

	var res *mr.Result[int, int]
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err = core.RunContext(ctx, spec, sc.cfg)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("churn %v: run wedged", plan)
	}

	fired := in.Fired()
	resizes := 0
	switch {
	case err == nil:
		if fired && !(plan.Kind == faultinject.DelayMap || plan.Kind == faultinject.DelayCombine) {
			t.Fatalf("churn %v: fault fired but run reported success", plan)
		}
		total := 0
		for _, p := range res.Pairs {
			total += p.Value
		}
		if want := sc.splits * sc.emits; total != want {
			t.Fatalf("churn %v: total = %d, want %d", plan, total, want)
		}
		rep := res.TunerReport
		if rep == nil {
			t.Fatalf("churn %v: tuned run attached no TunerReport", plan)
		}
		for _, d := range rep.Epochs {
			if d.Settings.Combiners < 1 || d.Settings.Combiners > sc.maxC {
				t.Fatalf("churn %v: pool size out of bounds: %+v", plan, d)
			}
			if d.Action == "schedule" {
				resizes++
			}
		}
	case plan.Kind.IsPanic() && fired:
		var pe *mr.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("churn %v: injected panic surfaced as %T (%v)", plan, err, err)
		}
	case plan.Kind.IsCancel() && fired:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("churn %v: err = %v, want context.Canceled", plan, err)
		}
	default:
		// A guard violation (or any other engine-detected invariant
		// break) lands here: no fault fired but the run errored.
		t.Fatalf("churn %v: unexpected error with no fired fault: %v", plan, err)
	}

	reports := in.QueueReports()
	if len(reports) != sc.cfg.Mappers {
		t.Fatalf("churn %v: %d queue reports, want %d", plan, len(reports), sc.cfg.Mappers)
	}
	if qerr := faultinject.CheckQueues(reports); qerr != nil {
		t.Fatalf("churn %v: %v", plan, qerr)
	}
	if leaked := faultinject.AwaitNoWorkers(10 * time.Second); len(leaked) > 0 {
		t.Fatalf("churn %v: %d leaked worker goroutines:\n%s", plan, len(leaked), leaked[0])
	}
	return resizes
}

// TestChurnSweep drives seeded combiner grow/shrink schedules — alone and
// under injected panics, delays and cancellations — and asserts the
// elastic pool never violates the one-consumer-per-ring invariant, never
// loses or duplicates an element, and never leaks a worker. Across the
// sweep, scripted resizes must actually have fired mid-run (a sweep where
// no schedule step landed would be vacuous).
func TestChurnSweep(t *testing.T) {
	scenarios := int64(80)
	if testing.Short() {
		scenarios = 16
	}
	totalResizes := 0
	for seed := int64(0); seed < scenarios; seed++ {
		totalResizes += runChurnScenario(t, seed)
		if t.Failed() {
			return
		}
	}
	if totalResizes == 0 {
		t.Fatal("no scripted resize fired across the whole sweep")
	}
}

// TestChurnSeed replays one churn scenario:
// RAMR_CHURN_SEED=17 go test -run TestChurnSeed ./internal/faultinject
func TestChurnSeed(t *testing.T) {
	s := os.Getenv("RAMR_CHURN_SEED")
	if s == "" {
		t.Skip("set RAMR_CHURN_SEED to replay one churn scenario")
	}
	var seed int64
	if _, err := fmt.Sscan(s, &seed); err != nil {
		t.Fatalf("RAMR_CHURN_SEED=%q: %v", s, err)
	}
	runChurnScenario(t, seed)
}
