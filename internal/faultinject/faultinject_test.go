package faultinject

import (
	"testing"
	"time"

	"ramr/internal/spsc"
)

func TestNewPlanDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := NewPlan(seed, 4, 2)
		b := NewPlan(seed, 4, 2)
		if a != b {
			t.Fatalf("seed %d: %v != %v", seed, a, b)
		}
		if a.Worker < 0 || a.Nth < 1 || a.Every < 1 || a.Delay <= 0 {
			t.Fatalf("seed %d: degenerate plan %v", seed, a)
		}
		switch a.Kind {
		case PanicCombineBatch, DelayCombine, CancelMidDrain:
			if a.Worker >= 2 {
				t.Fatalf("seed %d: combiner-scoped worker %d out of range", seed, a.Worker)
			}
		default:
			if a.Worker >= 4 {
				t.Fatalf("seed %d: map-scoped worker %d out of range", seed, a.Worker)
			}
		}
	}
}

func TestPlanKindsCovered(t *testing.T) {
	seen := map[Kind]bool{}
	for seed := int64(0); seed < 500; seed++ {
		seen[NewPlan(seed, 4, 2).Kind] = true
	}
	for k := None; k < numKinds; k++ {
		if !seen[k] {
			t.Fatalf("kind %v never drawn in 500 seeds", k)
		}
	}
}

func TestInjectorFiresAtNth(t *testing.T) {
	plan := Plan{Seed: 1, Kind: PanicMapEmit, Worker: 1, Nth: 3}
	in := NewInjector(plan, 2, 1, nil)
	h := in.Hooks()
	h.MapEmit(0) // wrong worker: never fires
	h.MapEmit(1)
	h.MapEmit(1)
	if in.Fired() {
		t.Fatal("fired before Nth call")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic at Nth emit")
			}
		}()
		h.MapEmit(1)
	}()
	if !in.Fired() {
		t.Fatal("not marked fired")
	}
}

func TestWrapCombineCountsGlobally(t *testing.T) {
	plan := Plan{Seed: 2, Kind: PanicCombine, Nth: 5}
	in := NewInjector(plan, 1, 1, nil)
	f := WrapCombine(in, func(a, b int) int { return a + b })
	for i := 0; i < 4; i++ {
		if got := f(1, 2); got != 3 {
			t.Fatalf("wrapped combine = %d", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic at Nth combine")
		}
	}()
	f(1, 2)
}

func TestCheckQueues(t *testing.T) {
	good := []QueueReport{{Queue: 0, Drained: true, Stats: spsc.Stats{Pushes: 10, Pops: 10}}}
	if err := CheckQueues(good); err != nil {
		t.Fatal(err)
	}
	undrained := []QueueReport{{Queue: 1, Drained: false}}
	if err := CheckQueues(undrained); err == nil {
		t.Fatal("undrained queue accepted")
	}
	leaky := []QueueReport{{Queue: 2, Drained: true, Stats: spsc.Stats{Pushes: 10, Pops: 7}}}
	if err := CheckQueues(leaky); err == nil {
		t.Fatal("conservation violation accepted")
	}
}

func TestWorkerStacksFindsQueueWaiter(t *testing.T) {
	q := spsc.MustNew[int](2, spsc.WaitSleep)
	q.Push(1)
	q.Push(2)
	blocked := make(chan struct{})
	go func() {
		close(blocked)
		q.Push(3) // blocks in waitUntil until the consumer pops
	}()
	<-blocked
	deadline := time.Now().Add(2 * time.Second)
	for len(WorkerStacks()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked spsc producer not visible in WorkerStacks")
		}
		time.Sleep(time.Millisecond)
	}
	q.TryPop() // release the producer
	q.TryPop()
	q.TryPop()
	if leaked := AwaitNoWorkers(5 * time.Second); len(leaked) > 0 {
		t.Fatalf("worker still reported after release:\n%s", leaked[0])
	}
}
