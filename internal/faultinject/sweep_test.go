package faultinject_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"ramr/internal/container"
	"ramr/internal/core"
	"ramr/internal/faultinject"
	"ramr/internal/mr"
	"ramr/internal/phoenix"
	"ramr/internal/spsc"
	"ramr/internal/topology"
)

// sweepKeys is sized so the PanicReduce ordinals (Nth <= 300) usually
// land inside the reduce phase's key range.
const sweepKeys = 350

// sweepSpec builds the sweep's job: splits emitting `emits` pairs each
// over sweepKeys keys, with a serially computable total.
func sweepSpec(splits, emits int) *mr.Spec[int, int, int, int] {
	in := make([]int, splits)
	for i := range in {
		in[i] = i
	}
	return &mr.Spec[int, int, int, int]{
		Name:   "sweep",
		Splits: in,
		Map: func(s int, emit func(int, int)) {
			for e := 0; e < emits; e++ {
				emit((s*emits+e)%sweepKeys, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       mr.IdentityReduce[int, int](),
		NewContainer: func() container.Container[int, int] { return container.NewFixedArray[int](sweepKeys) },
		Less:         func(a, b int) bool { return a < b },
	}
}

// nonDenseMachine models firmware that numbers its two packages 0 and 2 —
// the locality-group regression surface.
func nonDenseMachine() *topology.Machine {
	return &topology.Machine{
		Name:           "non-dense",
		Sockets:        2,
		CoresPerSocket: 2,
		ThreadsPerCore: 1,
		Enum:           topology.EnumCompact,
		SocketIDs:      []int{0, 2},
		Caches: []topology.CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, Scope: topology.ScopePerCore, LatencyCycles: 4},
		},
		MemLatencyCycles: 200,
	}
}

// scenario is one seeded configuration + fault plan for one engine.
type scenario struct {
	engine string // "ramr" | "phoenix"
	cfg    mr.Config
	splits int
	emits  int
}

// newScenario derives the run shape from seed. The plan itself is derived
// separately (from the raw seed) once the worker counts are known.
func newScenario(seed int64) scenario {
	rng := rand.New(rand.NewSource(seed ^ 0x5e3779b97f4a7c15))
	var sc scenario
	if rng.Intn(2) == 0 {
		sc.engine = "ramr"
	} else {
		sc.engine = "phoenix"
	}
	cfg := mr.DefaultConfig()
	cfg.Mappers = 1 + rng.Intn(4)
	cfg.Combiners = 1 + rng.Intn(cfg.Mappers)
	cfg.QueueCapacity = []int{8, 64, 512}[rng.Intn(3)]
	cfg.BatchSize = []int{4, 16, 64}[rng.Intn(3)]
	cfg.EmitBatch = []int{1, 8, 64}[rng.Intn(3)]
	cfg.TaskSize = 1 + rng.Intn(4)
	cfg.Wait = []spsc.WaitPolicy{spsc.WaitSleep, spsc.WaitBusy}[rng.Intn(2)]
	switch rng.Intn(3) {
	case 0:
		cfg.Machine = topology.Flat(4)
	case 1:
		cfg.Machine = topology.Fig3Example()
	default:
		cfg.Machine = nonDenseMachine()
	}
	if rng.Intn(3) == 0 {
		cfg.Pin = mr.PinRAMR // plans may target CPUs the host lacks: must degrade gracefully
	} else {
		cfg.Pin = mr.PinNone
	}
	sc.cfg = cfg
	sc.splits = 4 + rng.Intn(13)
	sc.emits = 100 + rng.Intn(300)
	return sc
}

// runScenario executes one seeded scenario and asserts every lifecycle
// invariant. Any violation is reported with the plan so the seed alone
// reproduces it.
func runScenario(t *testing.T, seed int64) {
	t.Helper()
	sc := newScenario(seed)

	mapWorkers := sc.cfg.Mappers
	combWorkers := sc.cfg.NumCombiners()
	if sc.engine == "phoenix" {
		mapWorkers = sc.cfg.Mappers + sc.cfg.NumCombiners()
	}
	plan := faultinject.NewPlan(seed, mapWorkers, combWorkers)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := faultinject.NewInjector(plan, mapWorkers, combWorkers, cancel)

	spec := sweepSpec(sc.splits, sc.emits)
	spec.Combine = faultinject.WrapCombine(in, spec.Combine)
	spec.Reduce = faultinject.WrapReduce(in, spec.Reduce)
	sc.cfg.Hooks = in.Hooks()

	var res *mr.Result[int, int]
	var err error
	done := make(chan struct{})
	go func() {
		defer close(done)
		if sc.engine == "ramr" {
			res, err = core.RunContext(ctx, spec, sc.cfg)
		} else {
			res, err = phoenix.RunContext(ctx, spec, sc.cfg)
		}
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("%s %v: run wedged", sc.engine, plan)
	}

	fired := in.Fired()
	switch {
	case err == nil:
		// Fault-free outcome (the fault never triggered, or was a pure
		// delay): the result must be exactly right.
		if fired && !(plan.Kind == faultinject.DelayMap || plan.Kind == faultinject.DelayCombine) {
			t.Fatalf("%s %v: fault fired but run reported success", sc.engine, plan)
		}
		total := 0
		for _, p := range res.Pairs {
			total += p.Value
		}
		if want := sc.splits * sc.emits; total != want {
			t.Fatalf("%s %v: total = %d, want %d", sc.engine, plan, total, want)
		}
	case plan.Kind.IsPanic() && fired:
		var pe *mr.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s %v: injected panic surfaced as %T (%v), want *mr.PanicError", sc.engine, plan, err, err)
		}
	case plan.Kind.IsCancel() && fired:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s %v: err = %v, want context.Canceled", sc.engine, plan, err)
		}
	default:
		t.Fatalf("%s %v: unexpected error with no fired fault: %v", sc.engine, plan, err)
	}
	if fired && plan.Kind.IsCancel() && err == nil {
		t.Fatalf("%s %v: fired cancellation not reflected in run error", sc.engine, plan)
	}

	if sc.engine == "ramr" {
		reports := in.QueueReports()
		if len(reports) != sc.cfg.Mappers {
			t.Fatalf("%s %v: %d queue reports, want %d", sc.engine, plan, len(reports), sc.cfg.Mappers)
		}
		if qerr := faultinject.CheckQueues(reports); qerr != nil {
			t.Fatalf("%s %v: %v", sc.engine, plan, qerr)
		}
	}

	if leaked := faultinject.AwaitNoWorkers(10 * time.Second); len(leaked) > 0 {
		t.Fatalf("%s %v: %d leaked worker goroutines:\n%s", sc.engine, plan, len(leaked), leaked[0])
	}
}

// TestFaultSweep drives hundreds of seeded panic/delay/cancel scenarios
// through both engines and asserts, after every run: the fault surfaced
// as an ordinary error (never a process panic), every queue drained with
// Pushes == Pops, and no worker goroutine leaked. A failing seed
// reproduces standalone via TestFaultSeed (RAMR_FAULT_SEED).
func TestFaultSweep(t *testing.T) {
	scenarios := int64(240)
	if testing.Short() {
		scenarios = 40
	}
	for seed := int64(0); seed < scenarios; seed++ {
		runScenario(t, seed)
		if t.Failed() {
			return
		}
	}
}

// TestFaultSeed replays a single scenario: RAMR_FAULT_SEED=17 go test
// -run TestFaultSeed ./internal/faultinject
func TestFaultSeed(t *testing.T) {
	s := os.Getenv("RAMR_FAULT_SEED")
	if s == "" {
		t.Skip("set RAMR_FAULT_SEED to replay one sweep scenario")
	}
	var seed int64
	if _, err := fmt.Sscan(s, &seed); err != nil {
		t.Fatalf("RAMR_FAULT_SEED=%q: %v", s, err)
	}
	runScenario(t, seed)
}
