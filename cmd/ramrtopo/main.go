// Command ramrtopo inspects machine topologies and the RAMR pinning plans
// derived from them.
//
// Usage:
//
//	ramrtopo                           # detected host summary
//	ramrtopo -preset haswell-server    # paper platform presets
//	ramrtopo -preset xeon-phi -mappers 114 -combiners 114
//	ramrtopo -demo                     # the paper's Fig. 3 walkthrough
//	ramrtopo -pin rr -mappers 8 -combiners 4
package main

import (
	"flag"
	"fmt"
	"os"

	"ramr/internal/core"
	"ramr/internal/mr"
	"ramr/internal/topology"
)

func main() {
	preset := flag.String("preset", "", "topology preset (haswell-server, xeon-phi, fig3-example); empty = detect host")
	demo := flag.Bool("demo", false, "print the paper's Fig. 3 remapping walkthrough")
	mappers := flag.Int("mappers", 0, "mapper count for the pinning plan (0 = half the logical CPUs)")
	combiners := flag.Int("combiners", 0, "combiner count for the pinning plan (0 = equal to mappers)")
	pin := flag.String("pin", "ramr", "pinning policy: ramr | rr | none")
	flag.Parse()

	if *demo {
		m := topology.Fig3Example()
		fmt.Println(m)
		fmt.Println("compact (thridtocpu) order:", m.CompactOrder())
		plan := core.BuildPlan(m, 8, 8, mr.PinRAMR)
		fmt.Print(plan)
		return
	}

	var m *topology.Machine
	if *preset == "" {
		m = topology.Detect()
	} else {
		f, ok := topology.Presets()[*preset]
		if !ok {
			fmt.Fprintf(os.Stderr, "ramrtopo: unknown preset %q; available:", *preset)
			for name := range topology.Presets() {
				fmt.Fprintf(os.Stderr, " %s", name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		m = f()
	}

	fmt.Println(m)
	for _, c := range m.Caches {
		fmt.Printf("  L%d: %d KiB, %d-way, %s, ~%d cycles\n",
			c.Level, c.SizeBytes>>10, c.Assoc, c.Scope, c.LatencyCycles)
	}
	fmt.Println("  locality groups:", len(m.LocalityGroups()))

	nm := *mappers
	if nm == 0 {
		nm = m.NumCPUs() / 2
		if nm < 1 {
			nm = 1
		}
	}
	nc := *combiners
	if nc == 0 {
		nc = nm
	}
	policy, err := mr.ParsePinPolicy(*pin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ramrtopo:", err)
		os.Exit(2)
	}
	plan := core.BuildPlan(m, nm, nc, policy)
	fmt.Print(plan)
	if d := plan.MaxDistance(m); d >= 0 {
		fmt.Printf("worst combiner-mapper distance: %d\n", d)
	}
}
