// Command ramrbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ramrbench -list
//	ramrbench fig5 fig8a
//	ramrbench -quick all
//	ramrbench -csv fig7 > fig7.csv
//	ramrbench -metrics-out metrics.json -trace-out trace.json tasksize
//
// Experiment ids follow the paper: table1, fig1, fig3, fig4, fig5, fig6,
// fig7, fig8a, fig8b, fig9a, fig9b, fig10a, fig10b, plus native8a/native8b
// which re-run the engine comparison with the real runtimes on this host.
//
// -metrics-out and -trace-out instrument the native experiments (fig1,
// fig4, native8a/b, tasksize); modeled figures run through simarch and are
// unaffected. The metrics JSON describes the last native run performed,
// the Chrome trace accumulates spans from every measured run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ramr/internal/harness"
	"ramr/internal/telemetry"
	"ramr/internal/trace"
)

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSVFile writes one report as <dir>/<id>.csv.
func writeCSVFile(dir string, rep *harness.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, rep.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return rep.RenderCSV(f)
}

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	outdir := flag.String("outdir", "", "also write each report as <outdir>/<id>.csv")
	quick := flag.Bool("quick", false, "shrink native inputs and repetition counts (CI mode)")
	seed := flag.Int64("seed", 42, "input-generator seed")
	runs := flag.Int("runs", 0, "repetitions for native timing experiments (0 = default)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry report of the last native run as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of the native runs to this file (view at chrome://tracing)")
	flag.Parse()

	if *list {
		for _, e := range harness.List() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "ramrbench: no experiment given (try -list, or 'all')")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range harness.List() {
			ids = append(ids, e.ID)
		}
	}

	// Validate the whole invocation before running anything: a bad flag or
	// id should fail fast, not after minutes of measurement.
	if *runs < 0 {
		fmt.Fprintf(os.Stderr, "ramrbench: -runs must be >= 0 (0 = default), got %d\n", *runs)
		os.Exit(2)
	}
	exps := make([]harness.Experiment, 0, len(ids))
	anyNative := false
	for _, id := range ids {
		exp, err := harness.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ramrbench:", err)
			os.Exit(2)
		}
		anyNative = anyNative || exp.Native
		exps = append(exps, exp)
	}
	if !anyNative {
		// Modeled experiments never touch the instrumentation, so these
		// flags would silently produce nothing (or die at report time).
		if *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "ramrbench: -metrics-out needs at least one native experiment (fig1, fig4, native8a/b, tasksize)")
			os.Exit(2)
		}
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "ramrbench: -trace-out needs at least one native experiment (fig1, fig4, native8a/b, tasksize)")
			os.Exit(2)
		}
	}

	opt := harness.Options{Seed: *seed, Quick: *quick, Runs: *runs}
	if *metricsOut != "" {
		opt.Telemetry = telemetry.New()
	}
	if *traceOut != "" {
		opt.Trace = trace.New()
	}
	for _, exp := range exps {
		id := exp.ID
		rep, err := exp.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ramrbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		var renderErr error
		if *csv {
			renderErr = rep.RenderCSV(os.Stdout)
		} else {
			renderErr = rep.Render(os.Stdout)
			fmt.Println()
		}
		if renderErr != nil {
			fmt.Fprintf(os.Stderr, "ramrbench: render %s: %v\n", id, renderErr)
			os.Exit(1)
		}
		if *outdir != "" {
			if err := writeCSVFile(*outdir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "ramrbench: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if opt.Telemetry != nil {
		rep := opt.Telemetry.LastReport()
		if rep == nil {
			fmt.Fprintln(os.Stderr, "ramrbench: -metrics-out: no native run executed (modeled experiments are not instrumented)")
			os.Exit(1)
		}
		if err := writeFileWith(*metricsOut, rep.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "ramrbench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.Summary(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ramrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry report (last native run) written to %s\n", *metricsOut)
	}
	if opt.Trace != nil {
		if err := writeFileWith(*traceOut, opt.Trace.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "ramrbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s; per-worker utilization:\n", *traceOut)
		if err := opt.Trace.Summary(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ramrbench: %v\n", err)
			os.Exit(1)
		}
	}
}
