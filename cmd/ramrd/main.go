// Command ramrd is the RAMR job service daemon: an HTTP front end over
// the multi-job scheduler (internal/sched) through which clients submit
// named workloads, poll status, fetch results, cancel jobs, and scrape
// one aggregated Prometheus /metrics endpoint with per-job labels.
//
// Quickstart:
//
//	ramrd -addr 127.0.0.1:8080 -log-format json &
//	curl -s -X POST localhost:8080/jobs \
//	     -d '{"workload":"WC","priority":"high"}'
//	curl -s localhost:8080/jobs/1
//	curl -s localhost:8080/jobs/1/result
//	curl -s localhost:8080/jobs/1/trace   # Chrome-trace JSON (Perfetto)
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/debug/events
//
// Streaming sessions keep a resident pipeline alive across windowed
// results instead of tearing workers down per job: submit with a
// "stream" spec, feed chunks over time, read sealed windows, close to
// seal the tail. Backpressured ingestion answers 429 with a Retry-After
// hint when the pending-split bound is hit:
//
//	curl -s -X POST localhost:8080/jobs \
//	     -d '{"workload":"SYNTH","stream":{"window":1,"max_pending":64}}'
//	curl -s -X POST localhost:8080/jobs/1/chunks -d '{"ts":0,"elements":4096}'
//	curl -s -X POST localhost:8080/jobs/1/chunks -d '{"ts":1,"elements":4096}'
//	curl -s localhost:8080/jobs/1/windows        # sealed window summaries
//	curl -s localhost:8080/jobs/1/windows/0      # one sealed window
//	curl -s -X POST localhost:8080/jobs/1/close  # seal tail, settle job
//
// Logs are structured (log/slog): text by default, JSON with
// -log-format json. Job lines carry job_id and content_digest attrs, so
// one grep correlates a submission across admission, scheduling and
// completion.
//
// On SIGINT/SIGTERM the daemon stops admission (readiness /readyz flips
// to 503), waits for queued and running jobs up to -drain-timeout,
// cancels stragglers, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ramr/internal/service"
	"ramr/internal/topology"
)

func parseMachine(s string) (*topology.Machine, error) {
	switch {
	case s == "" || s == "host":
		return topology.Detect(), nil
	case s == "haswell":
		return topology.HaswellServer(), nil
	case s == "phi":
		return topology.XeonPhi(), nil
	case strings.HasPrefix(s, "flat:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "flat:"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid flat machine %q (want flat:N)", s)
		}
		return topology.Flat(n), nil
	default:
		return nil, fmt.Errorf("unknown machine %q (want host|haswell|phi|flat:N)", s)
	}
}

// newLogger builds the daemon's structured logger.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: %v", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		machine      = flag.String("machine", "host", "topology: host, haswell, phi, or flat:N (synthetic presets let a small host exercise multi-job scheduling)")
		budget       = flag.Int("budget", 0, "logical-CPU budget shared by all jobs (0 = whole machine)")
		maxQueued    = flag.Int("max-queued", 0, "admission queue bound; POST /jobs returns 429 beyond it (0 = default)")
		seed         = flag.Int64("seed", 0, "scheduler tie-break seed")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for queued and running jobs before cancelling")
		cacheBytes   = flag.Int64("cache-max-bytes", 0, "result memo cache bound in bytes; repeat submissions of an identical job return the cached result with HTTP 200 (0 = 32 MiB default, negative disables)")
		retain       = flag.Int("retain-finished", 0, "finished-job records kept in the registry before the oldest are evicted (0 = 128 default, negative retains all)")
		eventLog     = flag.Int("event-log", 0, "bounded /debug/events ring capacity (0 = 512 default, negative disables)")
		logFormat    = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug includes per-transition scheduler lines)")
	)
	flag.Parse()

	lg, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ramrd: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		lg.Error(msg, args...)
		os.Exit(1)
	}

	m, err := parseMachine(*machine)
	if err != nil {
		fatal("ramrd: invalid machine", "err", err)
	}
	svc, err := service.New(service.Config{
		Machine:        m,
		Budget:         *budget,
		MaxQueued:      *maxQueued,
		Seed:           *seed,
		CacheMaxBytes:  *cacheBytes,
		RetainFinished: *retain,
		EventLog:       *eventLog,
		Logger:         lg,
	})
	if err != nil {
		fatal("ramrd: building service", "err", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("ramrd: listen", "addr", *addr, "err", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	lg.Info("ramrd: serving", "url", "http://"+ln.Addr().String(),
		"machine", m.Name, "budget_cpus", svc.Scheduler().Budget(),
		"log_format", *logFormat)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		lg.Info("ramrd: draining on signal", "signal", sig.String(), "timeout", *drainTimeout)
	case err := <-errc:
		fatal("ramrd: serve", "err", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting HTTP first, then drain the scheduler: queued jobs
	// still run, stragglers past the deadline are cancelled but awaited.
	if err := srv.Shutdown(ctx); err != nil {
		lg.Warn("ramrd: http shutdown", "err", err)
	}
	if err := svc.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		lg.Warn("ramrd: drain", "err", err)
	} else if err != nil {
		lg.Warn("ramrd: drain deadline hit, stragglers cancelled")
	}
	lg.Info("ramrd: bye")
}
