// Command ramrtune searches the static knob space offline (§IV's hand
// sweep, automated): coordinate descent over mapper/combiner ratio, queue
// capacity and combiner batch size for one workload, with early stopping,
// emitting a JSON profile that mr.Config can load as a warm start.
//
// Usage:
//
//	ramrtune -app HG -out hg.json
//	ramrtune -app WC -size medium -ratios 1,2,4 -caps 256,1024,4096 -batches 100,500,2000
//	ramrtune -load hg.json
//
// -load round-trips a saved profile through mr.Config.ApplyProfile and
// prints the resulting static configuration; it performs no runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"ramr/internal/mr"
	"ramr/internal/tuner"
	"ramr/internal/workloads"
)

// parseInts parses a comma-separated list of positive ints.
func parseInts(name, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("%s: want comma-separated positive ints, got %q", name, f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSize(s string) (workloads.SizeClass, error) {
	switch strings.ToLower(s) {
	case "small":
		return workloads.Small, nil
	case "medium":
		return workloads.Medium, nil
	case "large":
		return workloads.Large, nil
	}
	return 0, fmt.Errorf("-size: want small|medium|large, got %q", s)
}

// median of measured seconds; mutates vs.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	return vs[len(vs)/2]
}

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ramrtune: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	app := flag.String("app", "HG", "workload: WC|HG|LR|KM|PCA|MM|SM")
	size := flag.String("size", "small", "input size class: small|medium|large")
	seed := flag.Int64("seed", 42, "input-generator seed")
	runs := flag.Int("runs", 3, "measured runs per candidate point (median is kept)")
	passes := flag.Int("passes", 3, "maximum coordinate-descent passes")
	ratios := flag.String("ratios", "1,2,3,4", "candidate mapper/combiner ratios")
	caps := flag.String("caps", "256,1024,4096", "candidate queue capacities")
	batches := flag.String("batches", "100,500,2000", "candidate combiner batch sizes")
	out := flag.String("out", "", "write the winning profile as JSON to this file")
	load := flag.String("load", "", "load a profile and print the mr.Config it produces (no runs)")
	flag.Parse()

	// Validate the whole flag surface before doing any work.
	if flag.NArg() > 0 {
		fail(2, "unexpected arguments %q (all inputs are flags)", flag.Args())
	}
	if *load != "" {
		if *out != "" {
			fail(2, "-load and -out are mutually exclusive")
		}
		p, err := tuner.LoadProfile(*load)
		if err != nil {
			fail(1, "%v", err)
		}
		cfg := mr.DefaultConfig()
		if err := cfg.ApplyProfile(p); err != nil {
			fail(1, "%v", err)
		}
		fmt.Printf("profile %s (workload %s, engine %s, %.4fs best, %d evaluations, converged=%v)\n",
			*load, p.Workload, p.Engine, p.Seconds, p.Evaluations, p.Converged)
		fmt.Printf("applies as: ratio=%d (combiners derived) queue-capacity=%d batch=%d\n",
			cfg.Ratio, cfg.QueueCapacity, cfg.BatchSize)
		return
	}
	if *runs < 1 {
		fail(2, "-runs must be >= 1, got %d", *runs)
	}
	if *passes < 1 {
		fail(2, "-passes must be >= 1, got %d", *passes)
	}
	sz, err := parseSize(*size)
	if err != nil {
		fail(2, "%v", err)
	}
	space := tuner.Space{}
	if space.Ratios, err = parseInts("-ratios", *ratios); err != nil {
		fail(2, "%v", err)
	}
	if space.Capacities, err = parseInts("-caps", *caps); err != nil {
		fail(2, "%v", err)
	}
	if space.Batches, err = parseInts("-batches", *batches); err != nil {
		fail(2, "%v", err)
	}
	if len(space.Ratios)+len(space.Capacities)+len(space.Batches) == 0 {
		fail(2, "empty search space: give at least one of -ratios/-caps/-batches")
	}
	job, err := workloads.NewJob(*app, workloads.HWL, sz, workloads.DefaultContainer(*app), *seed)
	if err != nil {
		fail(2, "%v", err)
	}

	eval := func(p tuner.Point) (float64, error) {
		cfg := mr.DefaultConfig()
		cfg.Ratio = p.Ratio
		cfg.Combiners = 0
		cfg.QueueCapacity = p.QueueCapacity
		cfg.BatchSize = p.BatchSize
		secs := make([]float64, *runs)
		for i := range secs {
			info, err := job.Run(workloads.EngineRAMR, cfg)
			if err != nil {
				return 0, err
			}
			secs[i] = info.Wall.Seconds()
		}
		return median(secs), nil
	}

	base := mr.DefaultConfig()
	start := tuner.Point{Ratio: base.Ratio, QueueCapacity: base.QueueCapacity, BatchSize: base.BatchSize}
	fmt.Printf("tuning %s (%s, seed %d) from %v, %d runs/point\n", job.App, job.InputDesc, *seed, start, *runs)
	res, err := tuner.CoordinateDescent(space, start, eval, tuner.SearchOptions{
		MaxPasses: *passes,
		Log:       func(line string) { fmt.Println("  " + line) },
	})
	if err != nil {
		fail(1, "%v", err)
	}
	fmt.Printf("best: %v (%.4fs) after %d evaluations in %d passes (converged=%v)\n",
		res.Best, res.BestSeconds, len(res.Evaluations), res.Passes, res.Converged)

	if *out != "" {
		prof := &tuner.Profile{
			Workload:    job.App,
			Engine:      "ramr",
			Host:        fmt.Sprintf("%s/%s gomaxprocs=%d", runtime.GOOS, runtime.GOARCH, runtime.GOMAXPROCS(0)),
			Best:        res.Best,
			Seconds:     res.BestSeconds,
			Evaluations: len(res.Evaluations),
			Converged:   res.Converged,
			Seed:        *seed,
		}
		if err := prof.WriteFile(*out); err != nil {
			fail(1, "%v", err)
		}
		fmt.Printf("profile written to %s (load with ramrtune -load, or mr.Config.ApplyProfile)\n", *out)
	}
}
