// Command ramrsynth drives the workload-aware synthetic test-suite
// (§III-C): MapReduce jobs with independently configurable map and combine
// kernel types and intensities, runnable on either engine.
//
// Usage:
//
//	ramrsynth -map cpu:60 -combine memory:40 -ratio 2
//	ramrsynth -map cpu:60 -combine memory:40 -engine phoenix
//	ramrsynth -elements 1000000 -keys 4096 -batch 500
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"ramr/internal/mr"
	"ramr/internal/synth"
	"ramr/internal/trace"
	"ramr/internal/workloads"
)

func parseKernel(s string) (synth.Kernel, error) {
	kind, intensity, ok := strings.Cut(s, ":")
	if !ok {
		return synth.Kernel{}, fmt.Errorf("want kind:intensity (e.g. cpu:60), got %q", s)
	}
	n, err := strconv.Atoi(intensity)
	if err != nil || n < 0 {
		return synth.Kernel{}, fmt.Errorf("bad intensity %q", intensity)
	}
	switch kind {
	case "cpu":
		return synth.Kernel{Kind: synth.CPU, Intensity: n}, nil
	case "memory", "mem":
		return synth.Kernel{Kind: synth.Memory, Intensity: n}, nil
	default:
		return synth.Kernel{}, fmt.Errorf("unknown kernel kind %q (want cpu|memory)", kind)
	}
}

func main() {
	mapK := flag.String("map", "cpu:60", "map kernel as kind:intensity")
	combK := flag.String("combine", "memory:20", "combine kernel as kind:intensity")
	elements := flag.Int("elements", 200_000, "number of input elements")
	keys := flag.Int("keys", 1024, "intermediate key range")
	engine := flag.String("engine", "ramr", "engine: ramr | phoenix")
	ratio := flag.Int("ratio", 1, "mapper/combiner ratio (ramr engine)")
	batch := flag.Int("batch", mr.DefaultBatchSize, "combiner batch size")
	seed := flag.Int64("seed", 42, "input seed")
	skew := flag.Float64("skew", 0, "zipf exponent shaping split sizes and keys (0 = uniform, else must be > 1)")
	traceOut := flag.String("trace", "", "write a Chrome trace of the run to this file (view at chrome://tracing)")
	flag.Parse()

	// Validate every flag before generating input or running: a bad value
	// should produce a usage message, not a mid-run panic (e.g. -ratio -1
	// used to divide by zero when sizing the worker split).
	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ramrsynth: "+format+"\n", args...)
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %q (all inputs are flags)", flag.Args())
	}
	if *elements < 1 {
		fatalf("-elements must be >= 1, got %d", *elements)
	}
	if *keys < 1 {
		fatalf("-keys must be >= 1, got %d", *keys)
	}
	if *ratio < 1 {
		fatalf("-ratio must be >= 1, got %d", *ratio)
	}
	if *batch < 1 {
		fatalf("-batch must be >= 1, got %d", *batch)
	}
	if *skew != 0 && *skew <= 1 {
		fatalf("-skew must be 0 (uniform) or > 1 (zipf exponent), got %g", *skew)
	}
	if *engine != "ramr" && *engine != "phoenix" {
		fatalf("unknown engine %q (want ramr|phoenix)", *engine)
	}
	mk, err := parseKernel(*mapK)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ramrsynth: -map:", err)
		os.Exit(2)
	}
	ck, err := parseKernel(*combK)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ramrsynth: -combine:", err)
		os.Exit(2)
	}

	params := synth.DefaultParams()
	params.Elements = *elements
	params.Keys = *keys
	params.MapKernel = mk
	params.CombineKernel = ck
	params.Skew = *skew
	job := synth.NewJob(params, *seed)

	// Start from the environment so RAMR_* knobs (RAMR_STEAL=off for the
	// static-steering baseline, RAMR_PIN, RAMR_WAIT, ...) apply; the
	// worker split below is derived from -ratio and overrides any
	// RAMR_MAPPERS/RAMR_COMBINERS setting.
	cfg, err := mr.FromEnv()
	if err != nil {
		fatalf("%v", err)
	}
	total := runtime.GOMAXPROCS(0)
	c := total / (*ratio + 1)
	if c < 1 {
		c = 1
	}
	m := total - c
	if m < 1 {
		m = 1
	}
	cfg.Mappers = m
	cfg.Combiners = c
	cfg.BatchSize = *batch

	eng := workloads.EngineRAMR
	if *engine == "phoenix" {
		eng = workloads.EnginePhoenix
	}

	var collector *trace.Collector
	if *traceOut != "" {
		collector = trace.New()
		cfg.Trace = collector
	}

	info, err := job.Run(eng, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ramrsynth:", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %s: %v (map-combine %v)\n", job.FullName, eng, info.Wall, info.Phases.MapCombine)
	fmt.Printf("phases: %s\n", info.Phases)
	fmt.Printf("output keys: %d  digest: %#x\n", info.Pairs, info.Digest)
	if eng == workloads.EngineRAMR {
		fmt.Printf("queues: %s\n", info.Queue)
		if info.Steal.TotalTasks() > 0 {
			fmt.Printf("steals: %s\n", info.Steal.String())
		}
	}
	if collector != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ramrsynth:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := collector.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, "ramrsynth:", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s; per-worker utilization:\n", *traceOut)
		if err := collector.Summary(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ramrsynth:", err)
			os.Exit(1)
		}
	}
}
