// Command ramrc is the RAMR cluster coordinator daemon: it speaks the
// same POST /jobs surface as a single ramrd worker, but executes each
// submission as data shards dispatched across several workers, merging
// their partial containers into one result whose output digest is
// byte-identical to a single-node run of the same request.
//
// Quickstart (two workers on one host):
//
//	ramrd -addr 127.0.0.1:8081 &
//	ramrd -addr 127.0.0.1:8082 &
//	ramrc -addr 127.0.0.1:8080 \
//	      -workers http://127.0.0.1:8081,http://127.0.0.1:8082 &
//	curl -s -X POST localhost:8080/jobs -d '{"workload":"WC"}'
//	curl -s localhost:8080/jobs/1/result   # merged digest + per-shard records
//	curl -s localhost:8080/stats           # worker set with health
//	curl -s localhost:8080/metrics         # ramr_cluster_* families
//
// Workers take an optional link cost after "=": workers sharing a cost
// share a switch tier, and shard placement ranks candidates by cost
// distance (the cache-distance victim order lifted to the network):
//
//	ramrc -workers http://10.0.0.1:8080=0,http://10.0.0.2:8080=0,http://10.1.0.1:8080=2
//
// Only workloads with exact integer arithmetic and an associative,
// commutative merge are dispatchable: WC, HG and SYNTH.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ramr/internal/cluster"
)

// newLogger builds the daemon's structured logger.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: %v", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text|json)", format)
	}
}

// parseWorkers parses the -workers list: comma-separated base URLs, each
// with an optional "=cost" suffix (default cost 0).
func parseWorkers(s string) ([]cluster.WorkerSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-workers is required (comma-separated ramrd base URLs, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082)")
	}
	var specs []cluster.WorkerSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("-workers has an empty entry (check for stray commas)")
		}
		spec := cluster.WorkerSpec{URL: part}
		if i := strings.LastIndex(part, "="); i >= 0 {
			cost, err := strconv.Atoi(part[i+1:])
			if err != nil {
				return nil, fmt.Errorf("invalid worker cost in %q (want url=integer)", part)
			}
			if cost < 0 {
				return nil, fmt.Errorf("worker cost must be >= 0 in %q", part)
			}
			spec = cluster.WorkerSpec{URL: part[:i], Cost: cost}
		}
		if !strings.HasPrefix(spec.URL, "http://") && !strings.HasPrefix(spec.URL, "https://") {
			return nil, fmt.Errorf("worker %q must be a base URL starting with http:// or https://", spec.URL)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8090", "listen address (host:port; :0 picks a free port)")
		workers        = flag.String("workers", "", "comma-separated ramrd worker base URLs, each with an optional =cost link-cost suffix (equal costs share a switch tier)")
		shards         = flag.Int("shards", 0, "data shards per job (0 = one per worker)")
		retries        = flag.Int("retries", 0, "full passes over a shard's candidate workers before the job fails (0 = 3 default)")
		backoff        = flag.Duration("backoff", 0, "base delay between dispatch passes, doubled per pass (0 = 100ms default)")
		pollInterval   = flag.Duration("poll-interval", 0, "pace of result polling on dispatched shards (0 = 25ms default)")
		requestTimeout = flag.Duration("request-timeout", 0, "per-HTTP-exchange timeout against workers (0 = 10s default)")
		shardTimeout   = flag.Duration("shard-timeout", 0, "per-shard dispatch+execution budget (0 = 5m default)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running dispatches before cancelling")
		logFormat      = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel       = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()

	// Validate every flag up front, before any network activity, so a
	// bad invocation fails in microseconds with an actionable message.
	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ramrc: "+format+"\n", args...)
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %q (ramrc takes flags only)", flag.Args())
	}
	specs, err := parseWorkers(*workers)
	if err != nil {
		fatalf("%v", err)
	}
	if *shards < 0 {
		fatalf("-shards must be >= 0 (0 selects one shard per worker), got %d", *shards)
	}
	if *retries < 0 {
		fatalf("-retries must be >= 0 (0 selects the default), got %d", *retries)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"-backoff", *backoff},
		{"-poll-interval", *pollInterval},
		{"-request-timeout", *requestTimeout},
		{"-shard-timeout", *shardTimeout},
	} {
		if d.v < 0 {
			fatalf("%s must be >= 0 (0 selects the default), got %v", d.name, d.v)
		}
	}
	if *drainTimeout <= 0 {
		fatalf("-drain-timeout must be > 0, got %v", *drainTimeout)
	}
	lg, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fatalf("%v", err)
	}

	co, err := cluster.New(cluster.Config{
		Workers:        specs,
		Shards:         *shards,
		Retries:        *retries,
		Backoff:        *backoff,
		PollInterval:   *pollInterval,
		RequestTimeout: *requestTimeout,
		ShardTimeout:   *shardTimeout,
		Logger:         lg,
	})
	if err != nil {
		fatalf("%v", err)
	}
	srv := cluster.NewServer(co, lg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Error("ramrc: listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	lg.Info("ramrc: serving", "url", "http://"+ln.Addr().String(),
		"workers", len(specs), "shards", co.Shards(), "log_format", *logFormat)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		lg.Info("ramrc: draining on signal", "signal", sig.String(), "timeout", *drainTimeout)
	case err := <-errc:
		lg.Error("ramrc: serve", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		lg.Warn("ramrc: http shutdown", "err", err)
	}
	if err := srv.Shutdown(ctx); err != nil && err != context.DeadlineExceeded {
		lg.Warn("ramrc: drain", "err", err)
	}
	lg.Info("ramrc: bye")
}
