// KMeans: iterative MapReduce on the public API. Each iteration is one
// RAMR invocation — assignment in the map phase, centroid accumulation in
// the combine phase — exactly the compute-map / memory-combine structure
// the paper identifies as RAMR's best case.
//
//	go run ./examples/kmeans -points 50000 -k 16 -dims 8
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"
)

import "ramr"

func main() {
	nPoints := flag.Int("points", 50_000, "number of points")
	k := flag.Int("k", 16, "number of clusters")
	dims := flag.Int("dims", 8, "point dimensionality")
	maxIter := flag.Int("iter", 50, "maximum iterations")
	eps := flag.Float64("eps", 1e-3, "convergence threshold on centroid movement")
	seed := flag.Int64("seed", 7, "input seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	// Ground-truth blob centers, points around them, perturbed starts.
	centers := make([]float64, *k**dims)
	for i := range centers {
		centers[i] = rng.Float64() * 100
	}
	points := make([]float64, *nPoints**dims)
	for p := 0; p < *nPoints; p++ {
		c := rng.Intn(*k)
		for d := 0; d < *dims; d++ {
			points[p**dims+d] = centers[c**dims+d] + rng.NormFloat64()*2
		}
	}
	centroids := make([]float64, len(centers))
	for i := range centroids {
		centroids[i] = centers[i] + rng.NormFloat64()*5
	}

	// Splits are point-index ranges; the point data stays shared.
	var splits [][2]int
	const splitPoints = 512
	for lo := 0; lo < *nPoints; lo += splitPoints {
		hi := lo + splitPoints
		if hi > *nPoints {
			hi = *nPoints
		}
		splits = append(splits, [2]int{lo, hi})
	}

	d, kk := *dims, *k
	stride := d + 1 // per cluster: d coordinate sums + 1 count
	spec := &ramr.Spec[[2]int, int, float64, float64]{
		Name:   "kmeans",
		Splits: splits,
		Map: func(rngIdx [2]int, emit func(int, float64)) {
			for p := rngIdx[0]; p < rngIdx[1]; p++ {
				pt := points[p*d : (p+1)*d]
				best, bestD := 0, math.Inf(1)
				for c := 0; c < kk; c++ {
					ct := centroids[c*d : (c+1)*d]
					var d2 float64
					for i := 0; i < d; i++ {
						diff := pt[i] - ct[i]
						d2 += diff * diff
					}
					if d2 < bestD {
						best, bestD = c, d2
					}
				}
				base := best * stride
				for i := 0; i < d; i++ {
					emit(base+i, pt[i])
				}
				emit(base+d, 1)
			}
		},
		Combine:      func(a, b float64) float64 { return a + b },
		Reduce:       ramr.IdentityReduce[int, float64](),
		NewContainer: ramr.FixedArrayFactory[float64](kk * stride),
	}

	cfg := ramr.DefaultConfig()
	start := time.Now()
	// ramr.Iterate re-runs the job until the done callback reports
	// convergence; the map closure reads the centroids slice we update
	// in place each round.
	_, info, err := ramr.Iterate(*maxIter,
		func(int) (*ramr.Result[int, float64], error) { return ramr.Run(spec, cfg) },
		func(_ int, res *ramr.Result[int, float64]) bool {
			sums := make([]float64, kk*stride)
			for _, p := range res.Pairs {
				sums[p.Key] = p.Value
			}
			var moved float64
			for c := 0; c < kk; c++ {
				n := sums[c*stride+d]
				if n == 0 {
					continue
				}
				for i := 0; i < d; i++ {
					next := sums[c*stride+i] / n
					moved += math.Abs(next - centroids[c*d+i])
					centroids[c*d+i] = next
				}
			}
			return moved < *eps
		})
	if err != nil {
		log.Fatal(err)
	}
	iter := info.Iterations
	elapsed := time.Since(start)

	// Report recovered centroids against the ground truth.
	var worst float64
	for c := 0; c < kk; c++ {
		best := math.Inf(1)
		for g := 0; g < kk; g++ {
			var d2 float64
			for i := 0; i < d; i++ {
				diff := centroids[c*d+i] - centers[g*d+i]
				d2 += diff * diff
			}
			if d2 < best {
				best = d2
			}
		}
		if r := math.Sqrt(best); r > worst {
			worst = r
		}
	}
	fmt.Printf("converged after %d iterations in %v\n", iter, elapsed)
	fmt.Printf("worst centroid distance to a true blob center: %.3f\n", worst)
}
