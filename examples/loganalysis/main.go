// Loganalysis: a realistic MapReduce beyond the benchmark suite — parse
// web-server access logs and aggregate per-path traffic statistics
// (requests, bytes, error counts, latency sums) with a struct-valued
// combine. Demonstrates the public API with a non-trivial value type and
// a real Reduce that derives final metrics from the combined accumulator.
//
//	go run ./examples/loganalysis            # synthetic traffic
//	go run ./examples/loganalysis -file access.log
//
// Log line format (space-separated, one request per line):
//
//	<path> <status> <bytes> <latency-us>
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

import "ramr"

// acc is the per-path accumulator flowing through the combine phase.
type acc struct {
	Requests int
	Bytes    int64
	Errors   int
	LatUS    int64
}

// pathStats is the final per-path report entry.
type pathStats struct {
	Requests  int
	MBytes    float64
	ErrorRate float64
	AvgLatMS  float64
}

var samplePaths = []string{
	"/", "/index.html", "/api/v1/users", "/api/v1/orders", "/api/v1/search",
	"/static/app.js", "/static/app.css", "/img/logo.png", "/healthz", "/admin",
}

// generate synthesizes n log lines with realistic skew: hot paths get most
// traffic, /admin mostly 403s, the API occasionally 500s.
func generate(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(samplePaths)-1))
	var lines []string
	var cur strings.Builder
	for i := 0; i < n; i++ {
		path := samplePaths[zipf.Uint64()]
		status := 200
		switch {
		case path == "/admin" && rng.Intn(10) < 8:
			status = 403
		case strings.HasPrefix(path, "/api/") && rng.Intn(50) == 0:
			status = 500
		case rng.Intn(100) == 0:
			status = 404
		}
		bytes := 200 + rng.Intn(50_000)
		lat := 300 + rng.Intn(20_000)
		fmt.Fprintf(&cur, "%s %d %d %d\n", path, status, bytes, lat)
		if cur.Len() > 32<<10 {
			lines = append(lines, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		lines = append(lines, cur.String())
	}
	return lines
}

// chunkFile splits file contents on line boundaries.
func chunkFile(data string) []string {
	const target = 32 << 10
	var out []string
	for len(data) > 0 {
		end := target
		if end >= len(data) {
			out = append(out, data)
			break
		}
		for end < len(data) && data[end] != '\n' {
			end++
		}
		if end < len(data) {
			end++
		}
		out = append(out, data[:end])
		data = data[end:]
	}
	return out
}

func main() {
	requests := flag.Int("requests", 300_000, "synthetic request count (ignored with -file)")
	file := flag.String("file", "", "access log to analyze")
	top := flag.Int("top", 10, "paths to print")
	flag.Parse()

	var splits []string
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		splits = chunkFile(string(data))
	} else {
		splits = generate(*requests, 1)
	}

	spec := &ramr.Spec[string, string, acc, pathStats]{
		Name:   "loganalysis",
		Splits: splits,
		Map: func(chunk string, emit func(string, acc)) {
			for _, line := range strings.Split(chunk, "\n") {
				f := strings.Fields(line)
				if len(f) != 4 {
					continue
				}
				status, err1 := strconv.Atoi(f[1])
				bytes, err2 := strconv.ParseInt(f[2], 10, 64)
				lat, err3 := strconv.ParseInt(f[3], 10, 64)
				if err1 != nil || err2 != nil || err3 != nil {
					continue
				}
				a := acc{Requests: 1, Bytes: bytes, LatUS: lat}
				if status >= 400 {
					a.Errors = 1
				}
				emit(f[0], a)
			}
		},
		Combine: func(x, y acc) acc {
			return acc{
				Requests: x.Requests + y.Requests,
				Bytes:    x.Bytes + y.Bytes,
				Errors:   x.Errors + y.Errors,
				LatUS:    x.LatUS + y.LatUS,
			}
		},
		Reduce: func(_ string, a acc) pathStats {
			s := pathStats{Requests: a.Requests, MBytes: float64(a.Bytes) / (1 << 20)}
			if a.Requests > 0 {
				s.ErrorRate = float64(a.Errors) / float64(a.Requests)
				s.AvgLatMS = float64(a.LatUS) / float64(a.Requests) / 1000
			}
			return s
		},
		NewContainer: ramr.HashFactory[string, acc](),
		Less:         func(a, b string) bool { return a < b },
	}

	cfg := ramr.DefaultConfig()
	// Parsing is compute-heavy relative to the struct-add combine: let
	// the tuner pick the mapper/combiner split (§III-B).
	if ratio, err := ramr.TuneRatio(spec, cfg); err == nil {
		cfg.Combiners = 0
		cfg.Ratio = ratio
		fmt.Printf("tuned mapper/combiner ratio: %d\n", ratio)
	}

	start := time.Now()
	res, err := ramr.Run(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d paths in %v (%s)\n\n", len(res.Pairs), time.Since(start), res.Phases)

	pairs := res.Pairs
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Value.Requests > pairs[j].Value.Requests })
	fmt.Printf("%-20s %10s %10s %8s %8s\n", "path", "requests", "MiB", "err%", "lat(ms)")
	for i := 0; i < *top && i < len(pairs); i++ {
		p := pairs[i]
		fmt.Printf("%-20s %10d %10.1f %7.1f%% %8.2f\n",
			p.Key, p.Value.Requests, p.Value.MBytes, p.Value.ErrorRate*100, p.Value.AvgLatMS)
	}
}
