// Wordcount: the paper's enterprise-domain benchmark app on the public
// API, with container selection, knob tuning, and an engine comparison.
//
//	go run ./examples/wordcount -mb 8 -container fixed-hash -compare
//	go run ./examples/wordcount -file /usr/share/dict/words
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"
)

import "ramr"

// generate builds a synthetic Zipf-ish corpus of about n bytes.
func generate(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 4000)
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := range vocab {
		b := make([]byte, 3+rng.Intn(9))
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		vocab[i] = string(b)
	}
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(vocab)-1))
	var splits []string
	var cur strings.Builder
	total := 0
	for total < n {
		w := vocab[zipf.Uint64()]
		cur.WriteString(w)
		cur.WriteByte(' ')
		total += len(w) + 1
		if cur.Len() >= 16<<10 {
			splits = append(splits, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		splits = append(splits, cur.String())
	}
	return splits
}

// chunk splits file contents on whitespace boundaries.
func chunk(data string) []string {
	var splits []string
	const target = 16 << 10
	for len(data) > 0 {
		end := target
		if end >= len(data) {
			splits = append(splits, data)
			break
		}
		for end < len(data) && data[end] != ' ' && data[end] != '\n' {
			end++
		}
		splits = append(splits, data[:end])
		data = data[end:]
	}
	return splits
}

func buildSpec(splits []string, containerKind string) (*ramr.Spec[string, string, int, int], error) {
	spec := &ramr.Spec[string, string, int, int]{
		Name:   "wordcount",
		Splits: splits,
		Map: func(s string, emit func(string, int)) {
			for _, w := range strings.Fields(s) {
				emit(w, 1)
			}
		},
		Combine: func(a, b int) int { return a + b },
		Reduce:  ramr.IdentityReduce[string, int](),
		Less:    func(a, b string) bool { return a < b },
	}
	switch containerKind {
	case "hash":
		spec.NewContainer = ramr.HashFactory[string, int]()
	case "fixed-hash":
		// Fixed-capacity open addressing: declare a distinct-word bound.
		spec.NewContainer = ramr.FixedHashFactory[string, int](64_000, ramr.HashString)
	default:
		return nil, fmt.Errorf("unknown container %q (want hash|fixed-hash)", containerKind)
	}
	return spec, nil
}

func main() {
	mb := flag.Int("mb", 4, "synthetic corpus size in MiB (ignored with -file)")
	file := flag.String("file", "", "count words of this file instead of a synthetic corpus")
	containerKind := flag.String("container", "hash", "intermediate container: hash | fixed-hash")
	compare := flag.Bool("compare", false, "also run the Phoenix++ baseline and report the speedup")
	top := flag.Int("top", 10, "print the N most frequent words")
	flag.Parse()

	var splits []string
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		splits = chunk(string(data))
	} else {
		splits = generate(*mb<<20, 1)
	}

	spec, err := buildSpec(splits, *containerKind)
	if err != nil {
		log.Fatal(err)
	}

	// Knobs come from RAMR_* environment variables when set.
	cfg, err := ramr.ConfigFromEnv()
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := ramr.Run(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ramrTime := time.Since(start)
	fmt.Printf("RAMR: %d distinct words in %v  (%s)\n", len(res.Pairs), ramrTime, res.Phases)

	// Top-N by count.
	byCount := append([]ramr.Pair[string, int](nil), res.Pairs...)
	for i := 0; i < *top && i < len(byCount); i++ {
		maxJ := i
		for j := i + 1; j < len(byCount); j++ {
			if byCount[j].Value > byCount[maxJ].Value {
				maxJ = j
			}
		}
		byCount[i], byCount[maxJ] = byCount[maxJ], byCount[i]
		fmt.Printf("  %2d. %-12s %d\n", i+1, byCount[i].Key, byCount[i].Value)
	}

	if *compare {
		start = time.Now()
		base, err := ramr.RunPhoenix(spec, cfg)
		if err != nil {
			log.Fatal(err)
		}
		phxTime := time.Since(start)
		fmt.Printf("Phoenix++: %d distinct words in %v\n", len(base.Pairs), phxTime)
		fmt.Printf("speedup (Phoenix/RAMR): %.2fx\n", phxTime.Seconds()/ramrTime.Seconds())
	}
}
