// Synthetic: a miniature of the paper's Fig. 4 on the public API — a
// CPU-intensive map with a memory-intensive combine, swept over the
// mapper/combiner ratio, against the Phoenix++ baseline. On a multicore
// host the optimal ratio falls as the combine intensity grows, mirroring
// the paper's ratio 3 -> 2 -> 1 progression.
//
//	go run ./examples/synthetic
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"time"
)

import "ramr"

// wide is the shared read-only array the memory kernel wanders over.
var wide = func() []int64 {
	w := make([]int64, 1<<21)
	var h uint64 = 0x9e3779b97f4a7c15
	for i := range w {
		h = h*6364136223846793005 + 1442695040888963407
		w[i] = int64(h)
	}
	return w
}()

func cpuKernel(x float64, iters int) float64 {
	for i := 0; i < iters; i++ {
		x = math.Sin(x)*1.0625 + math.Exp(-x*x)*0.5
	}
	return x
}

func memKernel(seed uint64, iters int) uint64 {
	h := seed | 1
	var s uint64
	for i := 0; i < iters; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		s += uint64(wide[(h>>17)&uint64(len(wide)-1)])
	}
	return s
}

func buildSpec(elements, keys, mapIters, combineIters int) *ramr.Spec[[2]int, int, uint64, uint64] {
	var splits [][2]int
	for lo := 0; lo < elements; lo += 512 {
		hi := lo + 512
		if hi > elements {
			hi = elements
		}
		splits = append(splits, [2]int{lo, hi})
	}
	return &ramr.Spec[[2]int, int, uint64, uint64]{
		Name:   "synthetic",
		Splits: splits,
		Map: func(rng [2]int, emit func(int, uint64)) {
			for e := rng[0]; e < rng[1]; e++ {
				v := cpuKernel(float64(e%97)/97, mapIters)
				emit(e%keys, uint64(int64(v*1e6))+1)
			}
		},
		Combine: func(a, b uint64) uint64 {
			_ = memKernel(a^b, combineIters)
			return a + b
		},
		Reduce:       ramr.IdentityReduce[int, uint64](),
		NewContainer: ramr.FixedArrayFactory[uint64](keys),
		Less:         func(a, b int) bool { return a < b },
	}
}

func configFor(ratio int) ramr.Config {
	cfg := ramr.DefaultConfig()
	total := runtime.GOMAXPROCS(0)
	c := total / (ratio + 1)
	if c < 1 {
		c = 1
	}
	m := total - c
	if m < 1 {
		m = 1
	}
	cfg.Mappers = m
	cfg.Combiners = c
	return cfg
}

func main() {
	const elements = 60_000
	const keys = 1024
	const mapIters = 40
	fmt.Printf("%d elements, CPU map (%d iters), memory combine swept; %d logical CPUs\n\n",
		elements, mapIters, runtime.GOMAXPROCS(0))
	fmt.Printf("%-12s", "combine")
	for _, ratio := range []int{3, 2, 1} {
		fmt.Printf("%12s", fmt.Sprintf("ratio=%d", ratio))
	}
	fmt.Printf("%12s\n", "phoenix")

	for _, combineIters := range []int{2, 8, 24, 64} {
		spec := buildSpec(elements, keys, mapIters, combineIters)
		fmt.Printf("%-12d", combineIters)
		bestT, bestR := math.Inf(1), 0
		for _, ratio := range []int{3, 2, 1} {
			start := time.Now()
			if _, err := ramr.Run(spec, configFor(ratio)); err != nil {
				log.Fatal(err)
			}
			el := time.Since(start).Seconds()
			if el < bestT {
				bestT, bestR = el, ratio
			}
			fmt.Printf("%11.3fs", el)
		}
		start := time.Now()
		if _, err := ramr.RunPhoenix(spec, configFor(1)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%11.3fs   <- best ratio %d\n", time.Since(start).Seconds(), bestR)
	}
}
