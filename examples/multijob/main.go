// Multijob: run several MapReduce jobs concurrently under one shared CPU
// budget. The scheduler hands each job a disjoint, locality-dense CPU
// grant, orders contending jobs by priority-weighted fair-share, and
// bounds admission — the multi-tenant side of the resource-aware runtime.
//
//	go run ./examples/multijob
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"ramr"
)

func wordcount(lines ...string) *ramr.Spec[string, string, int, int] {
	return &ramr.Spec[string, string, int, int]{
		Name:   "wordcount",
		Splits: lines,
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       ramr.IdentityReduce[string, int](),
		NewContainer: ramr.HashFactory[string, int](),
		Less:         func(a, b string) bool { return a < b },
	}
}

func main() {
	// A synthetic 56-CPU machine keeps the example deterministic on any
	// host; drop Machine (and the Pin override) to schedule the real box.
	sc, err := ramr.NewScheduler(ramr.SchedulerConfig{
		Machine: ramr.HaswellServer(),
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := ramr.DefaultConfig()
	cfg.Pin = ramr.PinNone // the synthetic machine's CPUs are not ours to pin

	corpus := []string{
		"the quick brown fox jumps over the lazy dog",
		"the dog barks and the fox runs",
		"quick quick slow the fox naps",
	}

	// Three jobs, three priorities, two engines. Each gets at most 8 of
	// the 56 CPUs, so all run concurrently on disjoint grants.
	type submitted struct {
		h    *ramr.JobHandle[string, int]
		prio string
	}
	var jobs []submitted
	for _, j := range []struct {
		prio    ramr.Priority
		name    string
		phoenix bool
	}{
		{ramr.PriorityHigh, "interactive", false},
		{ramr.PriorityNormal, "batch", false},
		{ramr.PriorityLow, "background-phoenix", true},
	} {
		h, err := ramr.Submit(sc, wordcount(corpus...), cfg, ramr.SubmitOptions{
			Name:     j.name,
			Priority: j.prio,
			MaxCPUs:  8,
			Phoenix:  j.phoenix,
		})
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, submitted{h, j.name})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, j := range jobs {
		res, err := j.h.Wait(ctx)
		if err != nil {
			log.Fatalf("%s: %v", j.prio, err)
		}
		st := j.h.Status()
		fmt.Printf("%-20s grant=%v keys=%d wall=%s\n",
			j.prio, st.Grant, len(res.Pairs), res.Phases.Total().Round(time.Microsecond))
	}

	if err := sc.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	st := sc.Stats()
	fmt.Printf("\nbudget=%d finished=%d in_use=%d\n", sc.Budget(), st.Finished, st.InUse)
}
