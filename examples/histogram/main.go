// Histogram: the paper's image-processing benchmark app on the public
// API. Reads a binary PPM (P6) image when given one, otherwise generates
// synthetic pixel data, and prints per-channel 16-bucket histograms.
//
// Histogram is the suite's canonical *light* workload — three almost-free
// emissions per pixel — which is why the paper finds it unsuited to the
// decoupled runtime with default containers (Fig. 8a): run with -compare
// on a multicore machine to see the effect live.
//
//	go run ./examples/histogram -mb 16 -compare
//	go run ./examples/histogram -ppm image.ppm
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"
)

import "ramr"

const buckets = 3 * 256

// readPPM loads the pixel bytes of a binary P6 image.
func readPPM(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(r, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("parse PPM header: %w", err)
	}
	if magic != "P6" || maxv != 255 {
		return nil, fmt.Errorf("want binary P6 with maxval 255, got %s/%d", magic, maxv)
	}
	if _, err := r.ReadByte(); err != nil { // single whitespace after header
		return nil, err
	}
	px := make([]byte, w*h*3)
	if _, err := io.ReadFull(r, px); err != nil {
		return nil, fmt.Errorf("read pixels: %w", err)
	}
	return px, nil
}

func synthetic(n int) []byte {
	rng := rand.New(rand.NewSource(1))
	px := make([]byte, n-n%3)
	for i := 0; i+2 < len(px); i += 3 {
		px[i] = byte(rng.Intn(220))
		px[i+1] = byte(rng.Intn(256))
		px[i+2] = byte(40 + rng.Intn(215))
	}
	return px
}

func chunk(px []byte) [][]byte {
	const split = 48 << 10 // multiple of 3
	var out [][]byte
	for len(px) > 0 {
		n := split
		if n > len(px) {
			n = len(px)
		}
		out = append(out, px[:n])
		px = px[n:]
	}
	return out
}

func main() {
	mb := flag.Int("mb", 8, "synthetic pixel volume in MiB (ignored with -ppm)")
	ppm := flag.String("ppm", "", "binary P6 image to histogram")
	compare := flag.Bool("compare", false, "also run the Phoenix++ baseline")
	flag.Parse()

	var px []byte
	if *ppm != "" {
		var err error
		px, err = readPPM(*ppm)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		px = synthetic(*mb << 20)
	}

	spec := &ramr.Spec[[]byte, int, int, int]{
		Name:   "histogram",
		Splits: chunk(px),
		Map: func(b []byte, emit func(int, int)) {
			for i := 0; i+2 < len(b); i += 3 {
				emit(int(b[i]), 1)
				emit(256+int(b[i+1]), 1)
				emit(512+int(b[i+2]), 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       ramr.IdentityReduce[int, int](),
		NewContainer: ramr.FixedArrayFactory[int](buckets),
		Less:         func(a, b int) bool { return a < b },
	}

	cfg := ramr.DefaultConfig()
	start := time.Now()
	res, err := ramr.Run(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ramrTime := time.Since(start)

	counts := make([]int, buckets)
	for _, p := range res.Pairs {
		counts[p.Key] = p.Value
	}
	for ch, name := range []string{"R", "G", "B"} {
		fmt.Printf("%s: ", name)
		// 16 coarse buckets of 16 intensities each, log-ish bar.
		for b := 0; b < 16; b++ {
			sum := 0
			for v := 0; v < 16; v++ {
				sum += counts[ch*256+b*16+v]
			}
			fmt.Print(bar(sum, len(px)/3))
		}
		fmt.Println()
	}
	fmt.Printf("RAMR: %d pixels in %v (%s)\n", len(px)/3, ramrTime, res.Phases)

	if *compare {
		start = time.Now()
		if _, err := ramr.RunPhoenix(spec, cfg); err != nil {
			log.Fatal(err)
		}
		phx := time.Since(start)
		fmt.Printf("Phoenix++: %v — speedup %.2fx (the paper expects <1 here: HG is a light workload)\n",
			phx, phx.Seconds()/ramrTime.Seconds())
	}
}

// bar renders a coarse density glyph for n of total.
func bar(n, total int) string {
	if total == 0 {
		return " "
	}
	glyphs := []string{" ", ".", ":", "+", "*", "#"}
	f := float64(n) / float64(total) * 16 * float64(len(glyphs)-1)
	i := int(f)
	if i >= len(glyphs) {
		i = len(glyphs) - 1
	}
	return glyphs[i]
}
