// Quickstart: count words with the RAMR runtime in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
)

import "ramr"

func main() {
	// Input is pre-partitioned into splits; here, one string per line.
	splits := []string{
		"the quick brown fox jumps over the lazy dog",
		"the dog barks and the fox runs",
		"quick quick slow the fox naps",
	}

	spec := &ramr.Spec[string, string, int, int]{
		Name:   "quickstart-wordcount",
		Splits: splits,
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       ramr.IdentityReduce[string, int](),
		NewContainer: ramr.HashFactory[string, int](),
		Less:         func(a, b string) bool { return a < b },
	}

	res, err := ramr.Run(spec, ramr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Pairs {
		fmt.Printf("%-6s %d\n", p.Key, p.Value)
	}
	fmt.Printf("\nphases: %s\n", res.Phases)
}
