package ramr_test

import (
	"fmt"
	"strings"
	"testing"

	"ramr"
)

// wcSpec builds a small word-count job over synthetic text.
func wcSpec(nChunks int) *ramr.Spec[string, string, int, int] {
	words := []string{"map", "reduce", "combine", "queue", "core", "cache"}
	splits := make([]string, nChunks)
	for i := range splits {
		var b strings.Builder
		for j := 0; j < 200; j++ {
			b.WriteString(words[(i*7+j*13)%len(words)])
			b.WriteByte(' ')
		}
		splits[i] = b.String()
	}
	return &ramr.Spec[string, string, int, int]{
		Name:   "wordcount-smoke",
		Splits: splits,
		Map: func(s string, emit func(string, int)) {
			for _, w := range strings.Fields(s) {
				emit(w, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       ramr.IdentityReduce[string, int](),
		NewContainer: ramr.HashFactory[string, int](),
		Less:         func(a, b string) bool { return a < b },
	}
}

// TestEnginesAgree runs the same job through RAMR and Phoenix++ and
// requires identical ordered output.
func TestEnginesAgree(t *testing.T) {
	spec := wcSpec(64)
	cfg := ramr.DefaultConfig()
	cfg.Mappers = 4
	cfg.Ratio = 2

	ra, err := ramr.Run(spec, cfg)
	if err != nil {
		t.Fatalf("RAMR run: %v", err)
	}
	ph, err := ramr.RunPhoenix(spec, cfg)
	if err != nil {
		t.Fatalf("Phoenix run: %v", err)
	}
	if len(ra.Pairs) == 0 {
		t.Fatal("RAMR produced no output")
	}
	if len(ra.Pairs) != len(ph.Pairs) {
		t.Fatalf("output sizes differ: ramr %d, phoenix %d", len(ra.Pairs), len(ph.Pairs))
	}
	total := 0
	for i := range ra.Pairs {
		if ra.Pairs[i] != ph.Pairs[i] {
			t.Fatalf("pair %d differs: ramr %+v, phoenix %+v", i, ra.Pairs[i], ph.Pairs[i])
		}
		total += ra.Pairs[i].Value
	}
	if want := 64 * 200; total != want {
		t.Fatalf("total word count = %d, want %d", total, want)
	}
	if ra.QueueStats.Pushes != ra.QueueStats.Pops {
		t.Fatalf("queue pushes %d != pops %d", ra.QueueStats.Pushes, ra.QueueStats.Pops)
	}
}

// TestConfigKnobs exercises the main configuration space on a small job.
func TestConfigKnobs(t *testing.T) {
	spec := wcSpec(16)
	for _, mappers := range []int{1, 2, 5} {
		for _, ratio := range []int{1, 3} {
			for _, batch := range []int{1, 7, 4096} {
				for _, pin := range []ramr.PinPolicy{ramr.PinRAMR, ramr.PinRoundRobin, ramr.PinNone} {
					cfg := ramr.DefaultConfig()
					cfg.Mappers = mappers
					cfg.Ratio = ratio
					cfg.BatchSize = batch
					cfg.Pin = pin
					cfg.QueueCapacity = 64
					name := fmt.Sprintf("m%d_r%d_b%d_%v", mappers, ratio, batch, pin)
					t.Run(name, func(t *testing.T) {
						res, err := ramr.Run(spec, cfg)
						if err != nil {
							t.Fatal(err)
						}
						if len(res.Pairs) != 6 {
							t.Fatalf("got %d distinct words, want 6", len(res.Pairs))
						}
					})
				}
			}
		}
	}
}
