package ramr

import (
	"context"
	"sync"
	"time"

	"ramr/internal/core"
	"ramr/internal/obs"
	"ramr/internal/phoenix"
	"ramr/internal/sched"
	"ramr/internal/trace"
)

// Priority is a scheduled job's service class; higher classes receive a
// proportionally larger share of the CPU budget under contention
// (deficit-weighted fair-share, weights 1/2/4) without starving lower
// ones.
type Priority = sched.Priority

// Priority classes, low to high.
const (
	PriorityLow    = sched.PriorityLow
	PriorityNormal = sched.PriorityNormal
	PriorityHigh   = sched.PriorityHigh
)

// SchedulerConfig parameterizes NewScheduler; see sched.Config.
type SchedulerConfig = sched.Config

// SchedulerStats is the scheduler occupancy snapshot.
type SchedulerStats = sched.Stats

// JobState is a scheduled job's lifecycle position.
type JobState = sched.State

// JobStatus is a point-in-time snapshot of a scheduled job.
type JobStatus = sched.JobStatus

// ErrSaturated is returned by Submit when the scheduler's bounded
// admission queue is full; back off and retry.
var ErrSaturated = sched.ErrSaturated

// Scheduler multiplexes one machine's logical-CPU budget across
// concurrent MapReduce jobs: each admitted job runs on a disjoint,
// locality-dense CPU grant, so RAMR's contention-aware pinning stays
// valid with neighbours on the box. Admission is bounded, ordering is
// priority-weighted fair-share, and freed CPUs are reserved for
// longest-waiting starved jobs.
type Scheduler struct {
	s *sched.Scheduler
}

// NewScheduler builds a Scheduler over cfg.Machine (the host when nil).
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	s, err := sched.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Scheduler{s: s}, nil
}

// Budget returns the number of schedulable logical CPUs.
func (sc *Scheduler) Budget() int { return sc.s.Budget() }

// Stats snapshots occupancy and lifetime counters.
func (sc *Scheduler) Stats() SchedulerStats { return sc.s.Stats() }

// Drain stops admission, lets queued and running jobs finish, and
// cancels stragglers when ctx expires (still awaiting their goroutines).
func (sc *Scheduler) Drain(ctx context.Context) error { return sc.s.Drain(ctx) }

// SubmitOptions shapes one Submit call.
type SubmitOptions struct {
	// Name labels the job in events and status; defaults to Spec.Name.
	Name string
	// Priority is the service class; the zero value is PriorityLow.
	Priority Priority
	// MinCPUs/MaxCPUs bound the CPU grant: the job never starts with
	// fewer than MinCPUs (0 means 1) and never receives more than
	// MaxCPUs (0 means the whole budget).
	MinCPUs int
	MaxCPUs int
	// Phoenix runs the job on the fused Phoenix++ baseline engine
	// instead of RAMR. The grant still bounds the worker count.
	Phoenix bool
}

// JobHandle tracks one submitted job and carries its typed result.
type JobHandle[K comparable, R any] struct {
	job *sched.Job
	rec *obs.Recorder

	mu       sync.Mutex
	res      *Result[K, R]
	finished sync.Once
}

// Submit admits spec for execution under sc's budget. The engine config
// is derived from cfg with the CPU grant overlaid at dispatch time:
// worker counts follow the grant size and cfg.Ratio, pinning is laid out
// over exactly the granted CPUs, and the elastic combiner pool (when
// cfg.Tuner is set) treats the grant as a hard ceiling. Submit fails
// fast with ErrSaturated when the admission queue is full.
//
// Submit is a free function because Go methods cannot introduce type
// parameters.
func Submit[S any, K comparable, V, R any](sc *Scheduler, spec *Spec[S, K, V, R], cfg Config, opts SubmitOptions) (*JobHandle[K, R], error) {
	name := opts.Name
	if name == "" {
		name = spec.Name
	}
	h := &JobHandle[K, R]{rec: obs.New(name)}
	c := cfg
	c.Machine = sc.s.Machine()
	job, err := sc.s.Submit(sched.JobSpec{
		Name:     name,
		Priority: opts.Priority,
		MinCPUs:  opts.MinCPUs,
		MaxCPUs:  opts.MaxCPUs,
		Run: func(ctx context.Context, grant []int) error {
			rc := c
			rc.ApplyGrant(grant)
			// Worker-lane tracing: stitch the run's collector under the
			// handle's lifecycle trace, creating one when the caller
			// didn't attach their own.
			if rc.Trace == nil {
				rc.Trace = trace.New()
			}
			h.rec.AttachEngine(rc.Trace)
			execStart := time.Now()
			var (
				res *Result[K, R]
				err error
			)
			if opts.Phoenix {
				res, err = phoenix.RunContext(ctx, spec, rc)
			} else {
				res, err = core.RunContext(ctx, spec, rc)
			}
			h.rec.SpanAt("execute", execStart, time.Now(),
				map[string]any{"cpus": append([]int(nil), grant...)})
			h.mu.Lock()
			h.res = res
			h.mu.Unlock()
			return err
		},
	})
	if err != nil {
		return nil, err
	}
	h.job = job
	h.rec.SetJob(job.ID(), name)
	return h, nil
}

// ID returns the scheduler-assigned job id.
func (h *JobHandle[K, R]) ID() int { return h.job.ID() }

// Wait blocks until the job finishes (or ctx expires) and returns its
// typed result. A ctx expiry returns ctx.Err() without cancelling the
// job; use Cancel for that.
func (h *JobHandle[K, R]) Wait(ctx context.Context) (*Result[K, R], error) {
	if err := h.job.Wait(ctx); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.res, nil
}

// Status snapshots the job's scheduler-side state, including its CPU
// grant once running.
func (h *JobHandle[K, R]) Status() JobStatus { return h.job.Status() }

// Cancel stops the job: queued jobs never start, running jobs drain and
// return a cancellation error. Cancel is unconditional — it does not
// consult the waiter count; callers sharing a handle across clients
// should pair AddWaiter with DropWaiter instead.
func (h *JobHandle[K, R]) Cancel() { h.job.Cancel() }

// AddWaiter registers one more interested party on the job, for callers
// that fan a single execution out to several clients (the job service's
// admission dedup does this for coalesced submissions). Each AddWaiter
// must be balanced by a DropWaiter or Cancel.
func (h *JobHandle[K, R]) AddWaiter() { h.job.AddWaiter() }

// DropWaiter detaches one waiter and cancels the job only when the last
// waiter leaves while the job is still queued or running. It reports
// whether this call actually cancelled the job.
func (h *JobHandle[K, R]) DropWaiter() bool { return h.job.DropWaiter() }

// Waiters returns the current waiter count (1 right after Submit).
func (h *JobHandle[K, R]) Waiters() int { return h.job.Waiters() }

// Trace returns the job's lifecycle trace. Once the job is terminal the
// scheduler-side spans (queue wait, grant allocation with the CPU set as
// span args) are finalized from the settled status and the root span
// closes; called earlier, it serves whatever has been recorded so far.
// Render with JobTrace.WriteChromeTrace and load at ui.perfetto.dev —
// the lifecycle lane sits above the run's worker lanes.
func (h *JobHandle[K, R]) Trace() *JobTrace {
	st := h.job.Status()
	if st.State == sched.StateDone || st.State == sched.StateCanceled {
		h.finished.Do(func() {
			if !st.Started.IsZero() {
				h.rec.SpanAt("queue-wait", st.QueuedAt, st.Started, nil)
				h.rec.SpanAt("grant-alloc", st.Started.Add(-st.AllocDur), st.Started,
					map[string]any{"cpus": st.Grant})
			}
			status := "done"
			switch {
			case st.State == sched.StateCanceled:
				status = "canceled"
			case st.Err != nil:
				status = "error"
			}
			h.rec.Finish(status)
		})
	}
	return h.rec
}
