package ramr_test

import (
	"fmt"
	"strings"

	"ramr"
)

// ExampleRun counts words with the RAMR engine.
func ExampleRun() {
	spec := &ramr.Spec[string, string, int, int]{
		Name:   "wordcount",
		Splits: []string{"a b a", "b c b"},
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       ramr.IdentityReduce[string, int](),
		NewContainer: ramr.HashFactory[string, int](),
		Less:         func(a, b string) bool { return a < b },
	}
	cfg := ramr.DefaultConfig()
	cfg.Mappers, cfg.Combiners = 2, 1
	res, err := ramr.Run(spec, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, p := range res.Pairs {
		fmt.Printf("%s=%d\n", p.Key, p.Value)
	}
	// Output:
	// a=2
	// b=3
	// c=1
}

// ExampleRunPhoenix runs the same job on the fused baseline; the outputs
// are identical, only the execution strategy differs.
func ExampleRunPhoenix() {
	spec := &ramr.Spec[int, int, int, int]{
		Name:   "sum-mod",
		Splits: []int{0, 1, 2, 3, 4, 5, 6, 7},
		Map: func(s int, emit func(int, int)) {
			emit(s%2, s)
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       ramr.IdentityReduce[int, int](),
		NewContainer: ramr.FixedArrayFactory[int](2),
		Less:         func(a, b int) bool { return a < b },
	}
	cfg := ramr.DefaultConfig()
	cfg.Mappers, cfg.Combiners = 2, 1
	res, err := ramr.RunPhoenix(spec, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("even:", res.Pairs[0].Value, "odd:", res.Pairs[1].Value)
	// Output:
	// even: 12 odd: 16
}

// ExampleTuneRatio shows the §III-B throughput-driven ratio tuner on a
// parse-heavy job: the mapper-to-combiner ratio comes out well above 1.
func ExampleTuneRatio() {
	splits := make([]string, 64)
	for i := range splits {
		splits[i] = strings.Repeat("alpha beta gamma delta ", 50)
	}
	spec := &ramr.Spec[string, string, int, int]{
		Name:   "parse-heavy",
		Splits: splits,
		Map: func(s string, emit func(string, int)) {
			for _, w := range strings.Fields(s) { // parsing dominates
				emit(w, 1)
			}
		},
		Combine:      func(a, b int) int { return a + b },
		Reduce:       ramr.IdentityReduce[string, int](),
		NewContainer: ramr.HashFactory[string, int](),
	}
	ratio, err := ramr.TuneRatio(spec, ramr.DefaultConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("ratio >= 1:", ratio >= 1)
	// Output:
	// ratio >= 1: true
}
