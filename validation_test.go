package ramr_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ramr"
	"ramr/internal/faultinject"
)

// assertNoWorkers fails the test if any engine worker goroutine is still
// alive shortly after a run that should never have started one.
func assertNoWorkers(t *testing.T) {
	t.Helper()
	if leaked := faultinject.AwaitNoWorkers(2 * time.Second); len(leaked) > 0 {
		t.Fatalf("%d worker goroutines leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

// Invalid configs must fail fast — the Validate error surfaces before
// any worker goroutine spawns, on both engines.
func TestInvalidConfigFailsFastRAMR(t *testing.T) {
	cfg := ramr.DefaultConfig()
	cfg.Mappers = -3
	if _, err := ramr.Run(wcSpec(4), cfg); err == nil {
		t.Fatal("Run accepted negative Mappers")
	}
	assertNoWorkers(t)
}

func TestInvalidConfigFailsFastPhoenix(t *testing.T) {
	cfg := ramr.DefaultConfig()
	cfg.QueueCapacity = -1
	if _, err := ramr.RunPhoenix(wcSpec(4), cfg); err == nil {
		t.Fatal("RunPhoenix accepted negative QueueCapacity")
	}
	assertNoWorkers(t)
}

func TestInvalidGrantFailsFast(t *testing.T) {
	cfg := ramr.DefaultConfig()
	cfg.CPUGrant = []int{0, 0}
	if _, err := ramr.Run(wcSpec(4), cfg); err == nil {
		t.Fatal("Run accepted duplicate CPUGrant ids")
	}
	cfg.CPUGrant = []int{-1}
	if _, err := ramr.RunPhoenix(wcSpec(4), cfg); err == nil {
		t.Fatal("RunPhoenix accepted negative CPUGrant id")
	}
	assertNoWorkers(t)
}

// A context that is already cancelled must return ctx.Err() without
// starting the pipeline, on both engines.
func TestPreCancelledContextRAMR(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ramr.RunContext(ctx, wcSpec(8), ramr.DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("got a result from a pre-cancelled run")
	}
	assertNoWorkers(t)
}

func TestPreCancelledContextPhoenix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ramr.RunPhoenixContext(ctx, wcSpec(8), ramr.DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("got a result from a pre-cancelled run")
	}
	assertNoWorkers(t)
}
