package ramr_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"ramr"
	"ramr/internal/faultinject"
)

// TestSchedulerConcurrentJobs runs three mixed-priority jobs through the
// public Scheduler API on a synthetic 56-CPU machine and checks typed
// results, disjoint CPU grants and engine mixing (RAMR + Phoenix).
func TestSchedulerConcurrentJobs(t *testing.T) {
	sc, err := ramr.NewScheduler(ramr.SchedulerConfig{Machine: ramr.HaswellServer(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ramr.DefaultConfig()
	cfg.Pin = ramr.PinNone // grants name CPUs the 1-CPU CI host lacks

	want := func(t *testing.T, res *ramr.Result[string, int]) {
		t.Helper()
		total := 0
		for _, p := range res.Pairs {
			total += p.Value
		}
		if total != 8*200 {
			t.Fatalf("total word count = %d, want %d", total, 8*200)
		}
	}

	h1, err := ramr.Submit(sc, wcSpec(8), cfg, ramr.SubmitOptions{Priority: ramr.PriorityHigh, MaxCPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ramr.Submit(sc, wcSpec(8), cfg, ramr.SubmitOptions{Priority: ramr.PriorityNormal, MaxCPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	h3, err := ramr.Submit(sc, wcSpec(8), cfg, ramr.SubmitOptions{Priority: ramr.PriorityLow, MaxCPUs: 8, Phoenix: true})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, h := range []*ramr.JobHandle[string, int]{h1, h2, h3} {
		res, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", h.ID(), err)
		}
		want(t, res)
	}

	// Grants were disjoint: with the machine far wider than the three
	// 8-CPU jobs, all three ran concurrently on separate CPU sets.
	seen := map[int]int{}
	for _, h := range []*ramr.JobHandle[string, int]{h1, h2, h3} {
		st := h.Status()
		if len(st.Grant) == 0 {
			t.Fatalf("job %d has no grant", st.ID)
		}
		for _, c := range st.Grant {
			if prev, dup := seen[c]; dup {
				t.Fatalf("CPU %d in grants of jobs %d and %d", c, prev, st.ID)
			}
			seen[c] = st.ID
		}
	}

	if st := sc.Stats(); st.Finished != 3 || st.InUse != 0 {
		t.Fatalf("stats = %+v, want Finished 3 InUse 0", st)
	}
	if leaked := faultinject.AwaitNoWorkers(2 * time.Second); len(leaked) > 0 {
		t.Fatalf("%d goroutines leaked after scheduled runs", len(leaked))
	}
}

// TestJobHandleTrace checks the public lifecycle-trace surface: after a
// scheduled job finishes, Trace() serves a Chrome-trace JSON document
// whose lifecycle spans cover queue wait, grant allocation (CPU set as
// span args) and the execution, with worker lanes stitched below.
func TestJobHandleTrace(t *testing.T) {
	sc, err := ramr.NewScheduler(ramr.SchedulerConfig{Machine: ramr.HaswellServer(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ramr.DefaultConfig()
	cfg.Pin = ramr.PinNone

	h, err := ramr.Submit(sc, wcSpec(8), cfg, ramr.SubmitOptions{Name: "traced", MaxCPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := h.Trace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	spans := map[string]map[string]any{}
	for _, ev := range events {
		if ev["ph"] == "X" {
			spans[ev["name"].(string)] = ev
		}
	}
	for _, want := range []string{"traced", "queue-wait", "grant-alloc", "execute"} {
		if _, ok := spans[want]; !ok {
			t.Fatalf("trace missing span %q", want)
		}
	}
	if args, _ := spans["traced"]["args"].(map[string]any); args == nil ||
		int(args["job_id"].(float64)) != h.ID() || args["status"] != "done" {
		t.Fatalf("root span args = %v, want job_id=%d status=done", spans["traced"]["args"], h.ID())
	}
	ga, _ := spans["grant-alloc"]["args"].(map[string]any)
	if ga == nil || len(ga["cpus"].([]any)) == 0 {
		t.Fatalf("grant-alloc span args = %v, want non-empty cpus", ga)
	}
	// Worker lanes from the attached collector: at least one thread_name
	// metadata row besides the lifecycle lane.
	lanes := 0
	for _, ev := range events {
		if ev["ph"] == "M" {
			lanes++
		}
	}
	if lanes < 2 {
		t.Fatalf("%d lanes in trace, want lifecycle + worker lanes", lanes)
	}
}

func TestSchedulerSaturationAndDrain(t *testing.T) {
	sc, err := ramr.NewScheduler(ramr.SchedulerConfig{Machine: ramr.HaswellServer(), MaxQueued: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ramr.DefaultConfig()
	cfg.Pin = ramr.PinNone

	// One job wide enough to hold the whole budget, then fill the
	// 1-deep queue, then overflow it.
	wide, err := ramr.Submit(sc, wcSpec(64), cfg, ramr.SubmitOptions{MinCPUs: sc.Budget(), MaxCPUs: sc.Budget()})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := ramr.Submit(sc, wcSpec(4), cfg, ramr.SubmitOptions{MinCPUs: sc.Budget()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ramr.Submit(sc, wcSpec(4), cfg, ramr.SubmitOptions{}); !errors.Is(err, ramr.ErrSaturated) {
		t.Fatalf("overflow submit err = %v, want ErrSaturated", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain must not lose the accepted queued job.
	if _, err := wide.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if res, err := queued.Wait(ctx); err != nil || res == nil {
		t.Fatalf("queued job lost in drain: res=%v err=%v", res, err)
	}
}
